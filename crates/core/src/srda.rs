//! Spectral Regression Discriminant Analysis — the paper's §III.
//!
//! Training is the paper's two-step reduction:
//!
//! 1. **Responses** ([`crate::responses`]): the `c − 1` closed-form
//!    eigenvectors `ȳ_k` of the class-affinity matrix `W` (Theorem 1 says
//!    any `a` with `X̄ᵀa = ȳ` is an LDA projective direction).
//! 2. **Regularized least squares** (Eqn 19): for each response, solve
//!    `ã_k = argmin Σᵢ (ãᵀx̃ᵢ − ȳ_k,i)² + α‖ã‖²` where `x̃ = [x; 1]` is the
//!    bias-augmented sample, so the data is never explicitly centered
//!    (§III.B's trick — essential for sparse input).
//!
//! The solver is pluggable ([`SrdaSolver`]):
//!
//! * [`SrdaSolver::NormalEquations`] — one Cholesky of the smaller of
//!   `X̃ᵀX̃ + αI` (Eqn 20) or `X̃X̃ᵀ + αI` (Eqn 21), reused for all `c − 1`
//!   right-hand sides. Always faster than LDA (paper Table I, max ×9).
//! * [`SrdaSolver::Lsqr`] — matrix-free damped LSQR; `O(k·c·ms)` time and
//!   `O(ms)` memory on sparse data. This is the *linear time* of the title.

use crate::labels::ClassIndex;
use crate::model::Embedding;
use crate::report::{FitReport, RecoveryAction, ResponseSolver};
use crate::responses;
use crate::{Result, SrdaError};
use srda_linalg::{ExecPolicy, Executor, LinalgError, Mat};
use srda_solvers::lsqr::{lsqr, LsqrConfig};
use srda_solvers::robust::{factor_ladder, RobustConfig, RobustRidge};
use srda_solvers::{AugmentedOp, ExecCsr, ExecDense, LinearOperator, StopReason};
use srda_sparse::CsrMatrix;

/// How SRDA's `c − 1` ridge problems are solved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SrdaSolver {
    /// Direct solve via one Cholesky factorization of the smaller normal
    /// equation form (primal Eqn 20 when `n ≤ m`, dual Eqn 21 when
    /// `n > m`). On sparse input the dual Gram matrix is built directly
    /// from the sparse rows (never densifying the data).
    NormalEquations,
    /// Iterative LSQR with damping `√α`. The paper's configuration for
    /// 20Newsgroups is `max_iter = 15`; they report "20 iterations are
    /// enough" in general. `tol = 0` runs exactly `max_iter` iterations.
    Lsqr {
        /// Iteration cap per response.
        max_iter: usize,
        /// Relative residual stopping tolerance (0 disables).
        tol: f64,
    },
}

/// Configuration for [`Srda`].
#[derive(Debug, Clone)]
pub struct SrdaConfig {
    /// Ridge parameter `α > 0` controlling shrinkage (paper §IV uses 1).
    pub alpha: f64,
    /// Ridge-solve engine.
    pub solver: SrdaSolver,
    /// Optional cap (bytes) on any dense scratch this fit may allocate.
    /// Exceeding it returns [`SrdaError::MemoryBudgetExceeded`] instead of
    /// allocating — the guard that reproduces the paper's out-of-memory
    /// dashes in Tables IX/X.
    pub memory_budget_bytes: Option<usize>,
    /// Solve the `c − 1` LSQR response problems on separate threads. The
    /// problems are independent, so this is a pure wall-clock win on
    /// multi-core machines; it is **off by default** because the paper's
    /// timing comparisons (and ours in `repro_*`) are single-threaded.
    /// Only affects the [`SrdaSolver::Lsqr`] paths.
    pub parallel_responses: bool,
    /// Execution backend for the hot kernels inside a fit (Gram builds,
    /// matrix products, operator applications). Defaults to
    /// [`ExecPolicy::from_env`], so setting `SRDA_THREADS=N` threads an
    /// otherwise-unchanged program; all backends are bitwise identical.
    pub exec: ExecPolicy,
}

impl Default for SrdaConfig {
    fn default() -> Self {
        SrdaConfig {
            alpha: 1.0,
            solver: SrdaSolver::NormalEquations,
            memory_budget_bytes: None,
            parallel_responses: false,
            exec: ExecPolicy::from_env(),
        }
    }
}

impl SrdaConfig {
    /// The paper's sparse-data configuration: LSQR with a fixed iteration
    /// count (15 for their 20Newsgroups runs) and `α = 1`.
    pub fn lsqr_default() -> Self {
        SrdaConfig {
            alpha: 1.0,
            solver: SrdaSolver::Lsqr {
                max_iter: 15,
                tol: 0.0,
            },
            memory_budget_bytes: None,
            parallel_responses: false,
            exec: ExecPolicy::from_env(),
        }
    }
}

/// The SRDA estimator. Construct with a config, then call
/// [`Srda::fit_dense`] or [`Srda::fit_sparse`].
#[derive(Debug, Clone)]
pub struct Srda {
    config: SrdaConfig,
}

/// A fitted SRDA model.
#[derive(Debug, Clone)]
pub struct SrdaModel {
    embedding: Embedding,
    n_classes: usize,
    alpha: f64,
    /// Total LSQR iterations across responses (0 for direct solves).
    lsqr_iterations: usize,
    /// Robustness ledger: what the fit actually did (see [`FitReport`]).
    fit_report: FitReport,
}

impl Srda {
    /// Create an estimator with the given configuration.
    pub fn new(config: SrdaConfig) -> Self {
        Srda { config }
    }

    /// Convenience: default configuration (`α = 1`, normal equations).
    pub fn default_dense() -> Self {
        Srda::new(SrdaConfig::default())
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> &SrdaConfig {
        &self.config
    }

    /// The kernel executor this fit will run on.
    fn executor(&self) -> Executor {
        Executor::new(self.config.exec)
    }

    /// Fit on dense data (`x`: samples as rows) with labels `y`.
    pub fn fit_dense(&self, x: &Mat, y: &[usize]) -> Result<SrdaModel> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_dense",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let index = ClassIndex::new(y)?;
        let ybar = responses::generate(&index);
        let n = x.ncols();

        match self.config.solver {
            SrdaSolver::NormalEquations => {
                // materialize the augmented matrix once; budget-checked
                let need = x.nrows() * (n + 1) * 8;
                self.check_budget(need, "augmented data matrix")?;
                let x_aug = x.append_constant_col(1.0);
                // RobustRidge walks the recovery ladder (direct →
                // jittered retries → damped LSQR) instead of propagating
                // a Singular/NotPositiveDefinite error to the caller
                let (w_aug, rep) =
                    RobustRidge::with_executor(RobustConfig::default(), self.executor())
                        .solve(&x_aug, &ybar, self.config.alpha)?;
                let report = FitReport::from_robust(&rep, ybar.ncols());
                Ok(self.finish(w_aug, n, index.n_classes(), 0, report))
            }
            SrdaSolver::Lsqr { max_iter, tol } => {
                let inner = ExecDense::new(x, self.executor());
                let op = AugmentedOp::new(&inner);
                let (w_aug, iters, report) = solve_lsqr_responses(
                    &op,
                    &ybar,
                    self.config.alpha,
                    max_iter,
                    tol,
                    self.config.parallel_responses,
                )?;
                Ok(self.finish(w_aug, n, index.n_classes(), iters, report))
            }
        }
    }

    /// Fit on sparse data without ever densifying it.
    pub fn fit_sparse(&self, x: &CsrMatrix, y: &[usize]) -> Result<SrdaModel> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_sparse",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let index = ClassIndex::new(y)?;
        let ybar = responses::generate(&index);
        let n = x.ncols();

        match self.config.solver {
            SrdaSolver::NormalEquations => {
                // Dual normal equations: K = X̃X̃ᵀ + αI is m × m and is
                // built from sparse row intersections — X̃ = [X | 1] adds
                // +1 to every Gram entry. A declined memory budget is a
                // recovery (matrix-free LSQR), not a fatal error: the
                // warning records exactly why the dense Gram was refused.
                let m = x.nrows();
                let exec = self.executor();
                let budget = self.config.memory_budget_bytes.unwrap_or(usize::MAX);
                let mut report = FitReport::default();
                let gram = match x.gram_t_dense_checked_exec(budget, &exec) {
                    Ok(k) => Some(k),
                    Err(decline) => {
                        report.warnings.push(format!(
                            "sparse dual Gram declined: {decline}; \
                             falling back to matrix-free LSQR"
                        ));
                        None
                    }
                };
                if let Some(mut k) = gram {
                    for i in 0..m {
                        for j in 0..m {
                            k[(i, j)] += 1.0; // the bias column's contribution
                        }
                    }
                    k.add_to_diag(self.config.alpha);

                    // the same ladder RobustRidge walks on dense data,
                    // shared via `factor_ladder` (the dual Gram matrix is
                    // built from sparse rows, so the factor step differs):
                    // factor → escalating jitter → matrix-free LSQR
                    let alpha = self.config.alpha;
                    let base = if alpha > 0.0 {
                        alpha * 10.0
                    } else {
                        1e-10 * k.max_abs().max(1.0)
                    };
                    let mut applied = 0.0;
                    let outcome = factor_ladder(
                        alpha,
                        base,
                        3,
                        10.0,
                        "sparse dual factorization",
                        |jitter| {
                            k.add_to_diag(jitter - applied);
                            applied = jitter;
                            srda_linalg::Cholesky::factor(&k)
                        },
                    )?;
                    report.warnings.extend(outcome.warnings);
                    report.recoveries.extend(outcome.actions);
                    if let Some((chol, jitter)) = outcome.value {
                        let u = chol.solve_mat(&ybar)?;
                        // w̃ = X̃ᵀ u : feature part via sparse transpose-multiply,
                        // bias part via column sums of u
                        let c1 = ybar.ncols();
                        let mut w_aug = Mat::zeros(n + 1, c1);
                        for j in 0..c1 {
                            let uj = u.col(j);
                            let wj = x.matvec_t_exec(&uj, &exec)?;
                            for (i, &v) in wj.iter().enumerate() {
                                w_aug[(i, j)] = v;
                            }
                            w_aug[(n, j)] = uj.iter().sum();
                        }
                        if w_aug.as_slice().iter().all(|v| v.is_finite()) {
                            report.condition_estimate = Some(chol.condition_estimate());
                            let solver = if jitter > 0.0 {
                                ResponseSolver::DirectJittered { jitter }
                            } else {
                                ResponseSolver::Direct
                            };
                            report.responses = vec![solver; c1];
                            return Ok(self.finish(w_aug, n, index.n_classes(), 0, report));
                        }
                        report
                            .warnings
                            .push("sparse dual solve produced non-finite weights".into());
                    }
                    report
                        .warnings
                        .push("all factorizations failed; weights computed by damped LSQR".into());
                }
                // every factorization failed, poisoned the weights, or was
                // declined by the budget: solve matrix-free, which never
                // forms the Gram matrix
                report.recoveries.push(RecoveryAction::LsqrFallback);
                let inner = ExecCsr::new(x, exec);
                let op = AugmentedOp::new(&inner);
                let (w_aug, iters, mut fb) = solve_lsqr_responses(
                    &op,
                    &ybar,
                    self.config.alpha,
                    500,
                    1e-10,
                    self.config.parallel_responses,
                )?;
                report.warnings.append(&mut fb.warnings);
                report.responses = vec![ResponseSolver::LsqrFallback; ybar.ncols()];
                Ok(self.finish(w_aug, n, index.n_classes(), iters, report))
            }
            SrdaSolver::Lsqr { max_iter, tol } => {
                let inner = ExecCsr::new(x, self.executor());
                let op = AugmentedOp::new(&inner);
                let (w_aug, iters, report) = solve_lsqr_responses(
                    &op,
                    &ybar,
                    self.config.alpha,
                    max_iter,
                    tol,
                    self.config.parallel_responses,
                )?;
                Ok(self.finish(w_aug, n, index.n_classes(), iters, report))
            }
        }
    }

    /// Fit through any [`LinearOperator`] — including
    /// [`srda_sparse::DiskCsr`], which realizes the paper's closing claim
    /// that SRDA still applies "with some reasonable disk I/O" when the
    /// data does not fit in memory: LSQR touches the operator only through
    /// `X·u` / `Xᵀ·v`, each one sequential scan of the on-disk non-zeros.
    ///
    /// Only the LSQR solver works matrix-free, so this returns an error
    /// for [`SrdaSolver::NormalEquations`]. The operator is wrapped with
    /// the §III.B bias column automatically (pass the *raw* data operator).
    pub fn fit_operator<A: LinearOperator + ?Sized + Sync>(
        &self,
        x: &A,
        y: &[usize],
    ) -> Result<SrdaModel> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_operator",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let SrdaSolver::Lsqr { max_iter, tol } = self.config.solver else {
            return Err(SrdaError::InvalidLabels {
                context: "fit_operator requires the LSQR solver (matrix-free)".into(),
            });
        };
        let index = ClassIndex::new(y)?;
        let ybar = responses::generate(&index);
        let n = x.ncols();
        let op = AugmentedOp::new(x);
        let (w_aug, iters, report) = solve_lsqr_responses(
            &op,
            &ybar,
            self.config.alpha,
            max_iter,
            tol,
            self.config.parallel_responses,
        )?;
        Ok(self.finish(w_aug, n, index.n_classes(), iters, report))
    }

    /// Incrementally refit on an **updated** sparse dataset (e.g. the old
    /// corpus plus freshly labeled documents), warm-starting each response
    /// solve from `previous`'s weights.
    ///
    /// LSQR converges geometrically from its start point, so when the data
    /// change is small the correction is tiny and far fewer iterations are
    /// needed than a cold [`Srda::fit_sparse`] — the spectral-regression
    /// answer to IDR/QR's incremental-update selling point. The class
    /// count and feature count must match `previous`; `tol` should be
    /// non-zero so the solver can stop early (that is the whole point).
    pub fn fit_sparse_incremental(
        &self,
        x: &CsrMatrix,
        y: &[usize],
        previous: &SrdaModel,
        max_iter: usize,
        tol: f64,
    ) -> Result<SrdaModel> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_sparse_incremental",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        if previous.embedding().n_features() != x.ncols() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_sparse_incremental (features)",
                expected: previous.embedding().n_features(),
                got: x.ncols(),
            });
        }
        let index = ClassIndex::new(y)?;
        if index.n_classes() != previous.n_classes() {
            return Err(SrdaError::InvalidLabels {
                context: format!(
                    "class count changed: {} -> {}",
                    previous.n_classes(),
                    index.n_classes()
                ),
            });
        }
        let ybar = responses::generate(&index);
        let n = x.ncols();
        let inner = ExecCsr::new(x, self.executor());
        let op = AugmentedOp::new(&inner);
        let cfg = srda_solvers::lsqr::LsqrConfig {
            damp: self.config.alpha.sqrt(),
            max_iter,
            tol,
        };
        let prev_w = previous.embedding().weights();
        let prev_b = previous.embedding().bias();
        let mut w_aug = Mat::zeros(n + 1, ybar.ncols());
        let mut total_iters = 0;
        let mut report = FitReport::default();
        let mut x0 = vec![0.0; n + 1];
        for j in 0..ybar.ncols() {
            for i in 0..n {
                x0[i] = prev_w[(i, j)];
            }
            x0[n] = prev_b[j];
            let r = srda_solvers::lsqr::lsqr_warm(&op, &ybar.col(j), &x0, &cfg);
            record_lsqr_response(&mut report, j, &r, tol)?;
            total_iters += r.iterations;
            w_aug.set_col(j, &r.x);
        }
        Ok(self.finish(w_aug, n, index.n_classes(), total_iters, report))
    }

    fn check_budget(&self, needed: usize, context: &'static str) -> Result<()> {
        if let Some(budget) = self.config.memory_budget_bytes {
            if needed > budget {
                return Err(SrdaError::MemoryBudgetExceeded {
                    needed_bytes: needed,
                    budget_bytes: budget,
                    context,
                });
            }
        }
        Ok(())
    }

    fn finish(
        &self,
        w_aug: Mat,
        n: usize,
        n_classes: usize,
        lsqr_iterations: usize,
        fit_report: FitReport,
    ) -> SrdaModel {
        // split [W; bᵀ] into the weight matrix and the intercept row
        let weights = w_aug.block(0, n, 0, w_aug.ncols());
        let bias = w_aug.row(n).to_vec();
        SrdaModel {
            embedding: Embedding::new(weights, bias).expect("split shapes always consistent"),
            n_classes,
            alpha: self.config.alpha,
            lsqr_iterations,
            fit_report,
        }
    }
}

/// Fold one LSQR response outcome into the fit report. A diverged solve
/// means the weight column is garbage (LSQR resets it to zero), so the
/// whole fit fails loudly instead of returning a silently broken model —
/// this is how a poisoned right-hand side or a failing disk operator
/// surfaces to the caller.
fn record_lsqr_response(
    report: &mut FitReport,
    j: usize,
    r: &srda_solvers::lsqr::LsqrResult,
    tol: f64,
) -> Result<()> {
    match r.stop {
        StopReason::Diverged => {
            return Err(SrdaError::Linalg(LinalgError::NonFinite {
                context: "LSQR response solve (diverged: non-finite input or operator output)",
            }));
        }
        StopReason::Stagnated => report.warnings.push(format!(
            "response {j}: LSQR stagnated after {} iterations (residual {:.3e})",
            r.iterations, r.residual_norm
        )),
        StopReason::MaxIterations if tol > 0.0 => report.warnings.push(format!(
            "response {j}: LSQR hit the iteration cap ({}) before reaching tol",
            r.iterations
        )),
        _ => {}
    }
    report.responses.push(ResponseSolver::Lsqr {
        iterations: r.iterations,
        stop: r.stop,
    });
    Ok(())
}

/// Solve the `c − 1` damped least-squares problems with LSQR — one
/// response at a time, or one thread per response when `parallel` is set
/// (they are fully independent) — returning the stacked `(n+1) × (c−1)`
/// solution, the total iteration count, and a [`FitReport`] with the
/// per-response stop reasons. A diverged response fails the whole fit
/// (see [`record_lsqr_response`]).
fn solve_lsqr_responses<A: LinearOperator + ?Sized + Sync>(
    op: &A,
    ybar: &Mat,
    alpha: f64,
    max_iter: usize,
    tol: f64,
    parallel: bool,
) -> Result<(Mat, usize, FitReport)> {
    let cfg = LsqrConfig {
        damp: alpha.sqrt(),
        max_iter,
        tol,
    };
    let k = ybar.ncols();
    let results: Vec<srda_solvers::lsqr::LsqrResult> = if parallel && k > 1 {
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|j| {
                    let cfg = &cfg;
                    let col = ybar.col(j);
                    s.spawn(move |_| lsqr(op, &col, cfg))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("lsqr thread")).collect()
        })
        .expect("response thread scope")
    } else {
        (0..k).map(|j| lsqr(op, &ybar.col(j), &cfg)).collect()
    };
    let mut w = Mat::zeros(op.ncols(), k);
    let mut total_iters = 0;
    let mut report = FitReport::default();
    for (j, result) in results.iter().enumerate() {
        record_lsqr_response(&mut report, j, result, tol)?;
        total_iters += result.iterations;
        w.set_col(j, &result.x);
    }
    Ok((w, total_iters, report))
}

impl SrdaModel {
    /// The learned embedding (`n_features → c − 1` dimensions).
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// Number of classes seen at fit time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Ridge parameter used at fit time.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total LSQR iterations spent (0 when the direct solver was used).
    pub fn lsqr_iterations(&self) -> usize {
        self.lsqr_iterations
    }

    /// The robustness ledger for the fit that produced this model: every
    /// recovery taken, per-response solver outcomes, warnings, and the
    /// Gram-matrix condition estimate. [`FitReport::clean`] is `true`
    /// when nothing went wrong.
    pub fn fit_report(&self) -> &FitReport {
        &self.fit_report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs in 3-D.
    fn blobs() -> (Mat, Vec<usize>) {
        let x = Mat::from_rows(&[
            vec![0.0, 0.1, -0.1],
            vec![0.1, -0.1, 0.0],
            vec![-0.1, 0.0, 0.1],
            vec![0.05, 0.05, 0.0],
            vec![4.0, 4.1, 3.9],
            vec![4.1, 3.9, 4.0],
            vec![3.9, 4.0, 4.1],
            vec![4.0, 4.0, 4.0],
        ])
        .unwrap();
        let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
        (x, y)
    }

    /// Three classes, 4-D, enough samples to be over-determined.
    fn three_blobs() -> (Mat, Vec<usize>) {
        let centers = [
            [0.0, 0.0, 0.0, 0.0],
            [5.0, 0.0, 5.0, 0.0],
            [0.0, 5.0, 0.0, 5.0],
        ];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (k, c) in centers.iter().enumerate() {
            for s in 0..6 {
                let noise = |d: usize| {
                    let x = ((k * 31 + s * 7 + d * 13) as f64 * 12.9898).sin() * 43758.5453;
                    (x - x.floor() - 0.5) * 0.3
                };
                rows.push((0..4).map(|d| c[d] + noise(d)).collect::<Vec<_>>());
                y.push(k);
            }
        }
        (Mat::from_rows(&rows).unwrap(), y)
    }

    fn class_compactness(z: &Mat, y: &[usize]) -> (f64, f64) {
        // (avg within-class dist, avg between-class centroid dist)
        let ci = ClassIndex::new(y).unwrap();
        let (centroids, _) = srda_linalg::stats::class_means(z, y, ci.n_classes()).unwrap();
        let mut within = 0.0;
        for (i, &k) in y.iter().enumerate() {
            within += srda_linalg::vector::dist2_sq(z.row(i), centroids.row(k)).sqrt();
        }
        within /= y.len() as f64;
        let mut between = 0.0;
        let mut pairs = 0;
        for a in 0..ci.n_classes() {
            for b in (a + 1)..ci.n_classes() {
                between +=
                    srda_linalg::vector::dist2_sq(centroids.row(a), centroids.row(b)).sqrt();
                pairs += 1;
            }
        }
        (within, between / pairs as f64)
    }

    #[test]
    fn separates_two_blobs() {
        let (x, y) = blobs();
        let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        assert_eq!(model.embedding().n_components(), 1);
        let z = model.embedding().transform_dense(&x).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(between > 10.0 * within, "within {within}, between {between}");
    }

    #[test]
    fn three_classes_give_two_components() {
        let (x, y) = three_blobs();
        let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        assert_eq!(model.embedding().n_components(), 2);
        assert_eq!(model.n_classes(), 3);
        let z = model.embedding().transform_dense(&x).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(between > 5.0 * within);
    }

    #[test]
    fn lsqr_matches_normal_equations() {
        let (x, y) = three_blobs();
        let ne = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        let it = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 300,
                tol: 0.0,
            },
            ..SrdaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        assert!(it.lsqr_iterations() > 0);
        let w1 = ne.embedding().weights();
        let w2 = it.embedding().weights();
        assert!(
            w1.approx_eq(w2, 1e-6 * w1.max_abs().max(1.0)),
            "max diff {}",
            w1.sub(w2).unwrap().max_abs()
        );
        for (b1, b2) in ne.embedding().bias().iter().zip(it.embedding().bias()) {
            assert!((b1 - b2).abs() < 1e-6);
        }
    }

    #[test]
    fn sparse_path_matches_dense_path() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        for solver in [
            SrdaSolver::NormalEquations,
            SrdaSolver::Lsqr {
                max_iter: 300,
                tol: 0.0,
            },
        ] {
            let cfg = SrdaConfig {
                solver,
                ..SrdaConfig::default()
            };
            let md = Srda::new(cfg.clone()).fit_dense(&x, &y).unwrap();
            let ms = Srda::new(cfg).fit_sparse(&xs, &y).unwrap();
            let wd = md.embedding().weights();
            let ws = ms.embedding().weights();
            assert!(
                wd.approx_eq(ws, 1e-6 * wd.max_abs().max(1.0)),
                "{solver:?}: max diff {}",
                wd.sub(ws).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn high_dimensional_small_sample() {
        // n ≫ m: the singular regime that breaks plain LDA; SRDA must be
        // fine (dual normal equations / ridge make it well-posed)
        let m = 10;
        let n = 200;
        let x = Mat::from_fn(m, n, |i, j| {
            let base = if i < 5 { 0.0 } else { 3.0 };
            let h = ((i * 131 + j * 37) as f64 * 12.9898).sin() * 43758.5453;
            base + (h - h.floor() - 0.5)
        });
        let y: Vec<usize> = (0..m).map(|i| usize::from(i >= 5)).collect();
        let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        let z = model.embedding().transform_dense(&x).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(between > 3.0 * within, "within {within} between {between}");
    }

    #[test]
    fn alpha_zero_limit_interpolates_training_responses() {
        // Corollary 3: with linearly independent samples and α → 0 the
        // embedding collapses each training class to a single point.
        let (x, y) = three_blobs(); // 18 samples in 4-D: NOT independent
        // make them independent by embedding into high dimension
        let hi = x.hcat(&Mat::from_fn(18, 30, |i, j| {
            let h = ((i * 17 + j * 29) as f64 * 78.233).sin() * 43758.5453;
            (h - h.floor() - 0.5) * 2.0
        }))
        .unwrap();
        let model = Srda::new(SrdaConfig {
            alpha: 1e-10,
            ..SrdaConfig::default()
        })
        .fit_dense(&hi, &y)
        .unwrap();
        let z = model.embedding().transform_dense(&hi).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(
            within < 1e-6 * between,
            "classes did not collapse: within {within}, between {between}"
        );
    }

    #[test]
    fn label_length_mismatch_rejected() {
        let (x, _) = blobs();
        let err = Srda::default_dense().fit_dense(&x, &[0, 1]);
        assert!(matches!(err, Err(SrdaError::ShapeMismatch { .. })));
    }

    #[test]
    fn single_class_rejected() {
        let (x, _) = blobs();
        assert!(Srda::default_dense().fit_dense(&x, &[0; 8]).is_err());
    }

    #[test]
    fn memory_budget_enforced_dense() {
        let (x, y) = blobs();
        let cfg = SrdaConfig {
            memory_budget_bytes: Some(16),
            ..SrdaConfig::default()
        };
        let err = Srda::new(cfg).fit_dense(&x, &y);
        assert!(matches!(err, Err(SrdaError::MemoryBudgetExceeded { .. })));
    }

    #[test]
    fn memory_budget_enforced_sparse_dual() {
        let (x, y) = blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        let cfg = SrdaConfig {
            memory_budget_bytes: Some(16),
            ..SrdaConfig::default()
        };
        // the 8×8 dual Gram needs 512 bytes; a 16-byte budget declines it
        // and the fit recovers matrix-free, recording exactly why
        let model = Srda::new(cfg).fit_sparse(&xs, &y).unwrap();
        let rep = model.fit_report();
        assert!(!rep.clean());
        assert!(rep.recoveries.contains(&RecoveryAction::LsqrFallback));
        assert!(
            rep.warnings
                .iter()
                .any(|w| w.contains("512 bytes") && w.contains("16 bytes")),
            "decline warning must name needed vs budget bytes: {:?}",
            rep.warnings
        );
        assert!(rep
            .responses
            .iter()
            .all(|s| *s == ResponseSolver::LsqrFallback));
        // the recovered model must still separate the blobs
        let z = model.embedding().transform_dense(&x).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(between > 10.0 * within, "within {within}, between {between}");
        // LSQR path needs no dense scratch, so the same budget is clean
        let cfg2 = SrdaConfig {
            memory_budget_bytes: Some(16),
            ..SrdaConfig::lsqr_default()
        };
        let m2 = Srda::new(cfg2).fit_sparse(&xs, &y).unwrap();
        assert!(m2.fit_report().clean());
    }

    #[test]
    fn threaded_exec_matches_serial_bitwise() {
        // the executor refactor's contract: any backend / thread count
        // produces bit-identical models
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        for solver in [
            SrdaSolver::NormalEquations,
            SrdaSolver::Lsqr {
                max_iter: 60,
                tol: 0.0,
            },
        ] {
            let serial = SrdaConfig {
                solver,
                exec: ExecPolicy::serial(),
                ..SrdaConfig::default()
            };
            let threaded = SrdaConfig {
                solver,
                exec: ExecPolicy::threaded(4),
                ..SrdaConfig::default()
            };
            let md_s = Srda::new(serial.clone()).fit_dense(&x, &y).unwrap();
            let md_t = Srda::new(threaded.clone()).fit_dense(&x, &y).unwrap();
            assert!(md_s
                .embedding()
                .weights()
                .approx_eq(md_t.embedding().weights(), 0.0));
            assert_eq!(md_s.embedding().bias(), md_t.embedding().bias());
            let ms_s = Srda::new(serial).fit_sparse(&xs, &y).unwrap();
            let ms_t = Srda::new(threaded).fit_sparse(&xs, &y).unwrap();
            assert!(ms_s
                .embedding()
                .weights()
                .approx_eq(ms_t.embedding().weights(), 0.0));
        }
    }

    #[test]
    fn transform_unseen_data() {
        let (x, y) = blobs();
        let model = Srda::default_dense().fit_dense(&x, &y).unwrap();
        // points near each blob center map near the respective embeddings
        let test =
            Mat::from_rows(&[vec![0.02, 0.0, 0.02], vec![4.05, 4.0, 3.95]]).unwrap();
        let zt = model.embedding().transform_dense(&test).unwrap();
        let z = model.embedding().transform_dense(&x).unwrap();
        let d0 = (zt[(0, 0)] - z[(0, 0)]).abs();
        let d1 = (zt[(0, 0)] - z[(4, 0)]).abs();
        assert!(d0 < d1);
    }

    #[test]
    fn larger_alpha_shrinks_weights() {
        let (x, y) = three_blobs();
        let norm = |alpha: f64| {
            let m = Srda::new(SrdaConfig {
                alpha,
                ..SrdaConfig::default()
            })
            .fit_dense(&x, &y)
            .unwrap();
            m.embedding().weights().frobenius_norm()
        };
        assert!(norm(0.01) > norm(1.0));
        assert!(norm(1.0) > norm(100.0));
    }

    #[test]
    fn incremental_refit_matches_cold_fit() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        // initial model on 4 of the 6 samples per class
        let head: Vec<usize> = (0..y.len()).filter(|i| i % 6 < 4).collect();
        let yh: Vec<usize> = head.iter().map(|&i| y[i]).collect();
        let prev = Srda::new(SrdaConfig::lsqr_default())
            .fit_sparse(&xs.select_rows(&head), &yh)
            .unwrap();
        // refit on everything, warm-started
        let srda = Srda::new(SrdaConfig::default());
        let warm = srda
            .fit_sparse_incremental(&xs, &y, &prev, 500, 1e-10)
            .unwrap();
        let cold = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 500,
                tol: 1e-10,
            },
            ..SrdaConfig::default()
        })
        .fit_sparse(&xs, &y)
        .unwrap();
        let w1 = warm.embedding().weights();
        let w2 = cold.embedding().weights();
        assert!(
            w1.approx_eq(w2, 1e-5 * w2.max_abs().max(1.0)),
            "max diff {}",
            w1.sub(w2).unwrap().max_abs()
        );
    }

    #[test]
    fn incremental_refit_saves_iterations_on_small_updates() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        // model on all but the last sample per class
        let head: Vec<usize> = (0..y.len()).filter(|i| i % 6 != 5).collect();
        let yh: Vec<usize> = head.iter().map(|&i| y[i]).collect();
        let prev = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 400,
                tol: 1e-10,
            },
            ..SrdaConfig::default()
        })
        .fit_sparse(&xs.select_rows(&head), &yh)
        .unwrap();
        let srda = Srda::new(SrdaConfig::default());
        let warm = srda
            .fit_sparse_incremental(&xs, &y, &prev, 400, 1e-8)
            .unwrap();
        let cold = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 400,
                tol: 1e-8,
            },
            ..SrdaConfig::default()
        })
        .fit_sparse(&xs, &y)
        .unwrap();
        assert!(
            warm.lsqr_iterations() <= cold.lsqr_iterations(),
            "warm {} vs cold {}",
            warm.lsqr_iterations(),
            cold.lsqr_iterations()
        );
    }

    #[test]
    fn incremental_refit_validates_compatibility() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        let prev = Srda::new(SrdaConfig::lsqr_default())
            .fit_sparse(&xs, &y)
            .unwrap();
        let srda = Srda::new(SrdaConfig::default());
        // wrong feature count
        let bad = CsrMatrix::zeros(6, 2);
        assert!(srda
            .fit_sparse_incremental(&bad, &[0, 0, 1, 1, 2, 2], &prev, 10, 0.0)
            .is_err());
        // changed class count
        let y2: Vec<usize> = y.iter().map(|&k| k.min(1)).collect();
        assert!(srda
            .fit_sparse_incremental(&xs, &y2, &prev, 10, 0.0)
            .is_err());
    }

    #[test]
    fn fit_operator_matches_fit_sparse() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        let cfg = SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 80,
                tol: 0.0,
            },
            ..SrdaConfig::default()
        };
        let direct = Srda::new(cfg.clone()).fit_sparse(&xs, &y).unwrap();
        let via_op = Srda::new(cfg).fit_operator(&xs, &y).unwrap();
        assert!(direct
            .embedding()
            .weights()
            .approx_eq(via_op.embedding().weights(), 0.0));
    }

    #[test]
    fn fit_operator_rejects_direct_solver() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        assert!(Srda::new(SrdaConfig::default())
            .fit_operator(&xs, &y)
            .is_err());
    }

    #[test]
    fn out_of_core_fit_through_disk_operator() {
        // the paper's "reasonable disk I/O" claim, end to end
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        let dir = std::env::temp_dir().join("srda_out_of_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.srdacsr");
        srda_sparse::disk::write_csr(&path, &xs).unwrap();
        let disk = srda_sparse::DiskCsr::open(&path).unwrap();

        let cfg = SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 80,
                tol: 0.0,
            },
            ..SrdaConfig::default()
        };
        let from_disk = Srda::new(cfg.clone()).fit_operator(&disk, &y).unwrap();
        let in_memory = Srda::new(cfg).fit_sparse(&xs, &y).unwrap();
        assert!(from_disk
            .embedding()
            .weights()
            .approx_eq(in_memory.embedding().weights(), 1e-12));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_responses_match_sequential() {
        let (x, y) = three_blobs();
        let seq = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 50,
                tol: 0.0,
            },
            parallel_responses: false,
            ..SrdaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        let par = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 50,
                tol: 0.0,
            },
            parallel_responses: true,
            ..SrdaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        // bitwise identical: same algorithm, same inputs, different threads
        assert!(seq
            .embedding()
            .weights()
            .approx_eq(par.embedding().weights(), 0.0));
        assert_eq!(seq.lsqr_iterations(), par.lsqr_iterations());
    }

    #[test]
    fn paper_config_constructors() {
        let c = SrdaConfig::lsqr_default();
        assert_eq!(c.alpha, 1.0);
        assert!(matches!(c.solver, SrdaSolver::Lsqr { max_iter: 15, .. }));
    }

    #[test]
    fn clean_fits_report_clean() {
        let (x, y) = three_blobs();
        let direct = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        let rep = direct.fit_report();
        assert!(rep.clean());
        assert_eq!(rep.responses.len(), 2);
        assert!(rep.responses.iter().all(|s| *s == ResponseSolver::Direct));
        assert!(rep.condition_estimate.unwrap() >= 1.0);

        let iterative = Srda::new(SrdaConfig::lsqr_default())
            .fit_dense(&x, &y)
            .unwrap();
        let rep = iterative.fit_report();
        assert!(rep.clean());
        assert!(rep.condition_estimate.is_none());
        assert!(rep
            .responses
            .iter()
            .all(|s| matches!(s, ResponseSolver::Lsqr { iterations, .. } if *iterations > 0)));
    }

    #[test]
    fn rank_deficient_dense_fit_recovers_with_warning() {
        // an all-zero feature with α = 0 makes the augmented Gram matrix
        // singular — this fit used to return Err(NotPositiveDefinite);
        // the fallback chain must now produce a usable model plus a
        // recorded warning
        let (x, y) = blobs();
        let x_bad = x.hcat(&Mat::zeros(8, 1)).unwrap();
        let cfg = SrdaConfig {
            alpha: 0.0,
            ..SrdaConfig::default()
        };
        let model = Srda::new(cfg).fit_dense(&x_bad, &y).unwrap();
        let rep = model.fit_report();
        assert!(!rep.clean());
        assert!(!rep.warnings.is_empty());
        assert!(!rep.recoveries.is_empty());
        assert!(rep
            .responses
            .iter()
            .all(|s| *s != ResponseSolver::Direct));
        let w = model.embedding().weights();
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
        // the recovered model still separates the classes
        let z = model.embedding().transform_dense(&x_bad).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(between > 10.0 * within, "within {within}, between {between}");
    }

    #[test]
    fn fit_rejects_non_finite_labels_data() {
        // a NaN row in the data must surface as an error from the LSQR
        // path, never as a NaN-filled model
        let (mut x, y) = blobs();
        x[(3, 1)] = f64::NAN;
        let err = Srda::new(SrdaConfig::lsqr_default()).fit_dense(&x, &y);
        assert!(matches!(err, Err(SrdaError::Linalg(_))), "{err:?}");
    }
}
