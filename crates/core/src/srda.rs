//! Spectral Regression Discriminant Analysis — the paper's §III.
//!
//! Training is the paper's two-step reduction:
//!
//! 1. **Responses** ([`crate::responses`]): the `c − 1` closed-form
//!    eigenvectors `ȳ_k` of the class-affinity matrix `W` (Theorem 1 says
//!    any `a` with `X̄ᵀa = ȳ` is an LDA projective direction).
//! 2. **Regularized least squares** (Eqn 19): for each response, solve
//!    `ã_k = argmin Σᵢ (ãᵀx̃ᵢ − ȳ_k,i)² + α‖ã‖²` where `x̃ = [x; 1]` is the
//!    bias-augmented sample, so the data is never explicitly centered
//!    (§III.B's trick — essential for sparse input).
//!
//! The solver is pluggable ([`SrdaSolver`]):
//!
//! * [`SrdaSolver::NormalEquations`] — one Cholesky of the smaller of
//!   `X̃ᵀX̃ + αI` (Eqn 20) or `X̃X̃ᵀ + αI` (Eqn 21), reused for all `c − 1`
//!   right-hand sides. Always faster than LDA (paper Table I, max ×9).
//! * [`SrdaSolver::Lsqr`] — matrix-free damped LSQR; `O(k·c·ms)` time and
//!   `O(ms)` memory on sparse data. This is the *linear time* of the title.

use crate::checkpoint::{CompletedResponse, FitCheckpoint, FitFingerprint, FIT_CHECKPOINT_FILE};
use crate::labels::ClassIndex;
use crate::model::Embedding;
use crate::report::{FitReport, RecoveryAction, ResponseSolver};
use crate::responses;
use crate::{Result, SrdaError};
use srda_linalg::{flam, ExecPolicy, Executor, LinalgError, Mat};
use srda_obs::{Recorder, SolverTrace};
use srda_solvers::checkpoint::{CheckpointError, LsqrCheckpoint};
use srda_solvers::lsqr::{lsqr_controlled, LsqrConfig, LsqrResult, SolveControls};
use srda_solvers::robust::{factor_ladder_governed, RobustConfig, RobustOutcome, RobustRidge};
use srda_solvers::{
    certify_operator, certify_spd_solve, AugmentedOp, ExecCsr, ExecDense, Interrupt,
    LinearOperator, RunGovernor, StopReason,
};
use srda_sparse::CsrMatrix;
use std::path::{Path, PathBuf};

/// How SRDA's `c − 1` ridge problems are solved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SrdaSolver {
    /// Direct solve via one Cholesky factorization of the smaller normal
    /// equation form (primal Eqn 20 when `n ≤ m`, dual Eqn 21 when
    /// `n > m`). On sparse input the dual Gram matrix is built directly
    /// from the sparse rows (never densifying the data).
    NormalEquations,
    /// Iterative LSQR with damping `√α`. The paper's configuration for
    /// 20Newsgroups is `max_iter = 15`; they report "20 iterations are
    /// enough" in general. `tol = 0` runs exactly `max_iter` iterations.
    Lsqr {
        /// Iteration cap per response.
        max_iter: usize,
        /// Relative residual stopping tolerance (0 disables).
        tol: f64,
    },
}

/// Configuration for [`Srda`].
#[derive(Debug, Clone)]
pub struct SrdaConfig {
    /// Ridge parameter `α > 0` controlling shrinkage (paper §IV uses 1).
    pub alpha: f64,
    /// Ridge-solve engine.
    pub solver: SrdaSolver,
    /// Optional cap (bytes) on any dense scratch this fit may allocate.
    /// Exceeding it returns [`SrdaError::MemoryBudgetExceeded`] instead of
    /// allocating — the guard that reproduces the paper's out-of-memory
    /// dashes in Tables IX/X.
    pub memory_budget_bytes: Option<usize>,
    /// Solve the `c − 1` LSQR response problems on separate threads. The
    /// problems are independent, so this is a pure wall-clock win on
    /// multi-core machines; it is **off by default** because the paper's
    /// timing comparisons (and ours in `repro_*`) are single-threaded.
    /// Only affects the [`SrdaSolver::Lsqr`] paths.
    pub parallel_responses: bool,
    /// Execution backend for the hot kernels inside a fit (Gram builds,
    /// matrix products, operator applications). Defaults to
    /// [`ExecPolicy::from_env`], so setting `SRDA_THREADS=N` threads an
    /// otherwise-unchanged program; all backends are bitwise identical.
    pub exec: ExecPolicy,
    /// Run governor: wall-clock/iteration budgets and cooperative
    /// cancellation. When set, every iterative loop and every expensive
    /// factorization boundary checks it; an exhausted budget stops the
    /// fit with a typed [`FitOutcome::Interrupted`] (or
    /// [`SrdaError::Interrupted`] from the plain `fit_*` entry points) —
    /// never a garbage model. The governor only *observes* solver state
    /// between iterations, so a governed fit that runs to completion is
    /// bitwise identical to an ungoverned one.
    pub governor: Option<RunGovernor>,
    /// Persist resumable state for LSQR fits: the checkpoint file
    /// (`srda-fit.ckpt`) goes into `dir`, refreshed every `every`
    /// iterations and on interrupt. Only the [`SrdaSolver::Lsqr`] paths
    /// checkpoint; direct solves record a warning and proceed.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume an interrupted LSQR fit from this checkpoint file. The
    /// checkpoint's fingerprint (data shape, labels, `α`, iteration cap,
    /// tolerance) must match the current fit exactly; the resumed
    /// trajectory is bitwise identical to the uninterrupted one.
    pub resume_from: Option<PathBuf>,
    /// Observability sink: when enabled, the fit emits a hierarchical
    /// span tree, registry counters (including the `flam.fit` complexity
    /// count), and per-iteration solver telemetry into this recorder.
    /// Defaults to [`Recorder::from_env`], so `SRDA_TRACE=1` instruments
    /// an otherwise-unchanged program; the disabled recorder is a no-op
    /// handle and instrumentation never perturbs the float sequence.
    pub recorder: Recorder,
}

/// Where and how often a fit persists resumable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory the checkpoint file ([`FIT_CHECKPOINT_FILE`]) is
    /// written into (created if missing).
    pub dir: PathBuf,
    /// Refresh the checkpoint every `every` LSQR iterations. `0` writes
    /// only when an interrupt lands.
    pub every: usize,
}

impl Default for SrdaConfig {
    fn default() -> Self {
        SrdaConfig {
            alpha: 1.0,
            solver: SrdaSolver::NormalEquations,
            memory_budget_bytes: None,
            parallel_responses: false,
            exec: ExecPolicy::from_env(),
            governor: None,
            checkpoint: None,
            resume_from: None,
            recorder: Recorder::from_env(),
        }
    }
}

impl SrdaConfig {
    /// The paper's sparse-data configuration: LSQR with a fixed iteration
    /// count (15 for their 20Newsgroups runs) and `α = 1`.
    pub fn lsqr_default() -> Self {
        SrdaConfig {
            alpha: 1.0,
            solver: SrdaSolver::Lsqr {
                max_iter: 15,
                tol: 0.0,
            },
            ..SrdaConfig::default()
        }
    }
}

/// What a governed fit produced: a complete model, or the partial state
/// of a budget-interrupted run.
#[derive(Debug, Clone)]
pub enum FitOutcome {
    /// The fit ran to completion.
    Complete(SrdaModel),
    /// The governor stopped the fit before all responses were solved.
    Interrupted(InterruptedFit),
}

impl FitOutcome {
    /// Unwrap the model, turning an interrupt into
    /// [`SrdaError::Interrupted`].
    pub fn into_model(self) -> Result<SrdaModel> {
        match self {
            FitOutcome::Complete(m) => Ok(m),
            FitOutcome::Interrupted(i) => Err(i.into_error()),
        }
    }
}

/// The partial state of a fit the [`RunGovernor`] stopped early.
#[derive(Debug, Clone)]
pub struct InterruptedFit {
    /// Which budget fired.
    pub reason: Interrupt,
    /// The ledger up to the interrupt (`report.interrupt` is set).
    pub report: FitReport,
    /// Response columns fully solved before the interrupt.
    pub responses_completed: usize,
    /// Total response columns the fit needed (`c − 1`).
    pub total_responses: usize,
    /// LSQR iterations spent before the interrupt.
    pub iterations: usize,
    /// Where the resumable checkpoint was written, when a
    /// [`CheckpointPolicy`] was configured.
    pub checkpoint: Option<PathBuf>,
}

impl InterruptedFit {
    /// The error the plain `fit_*` entry points surface for this state.
    pub fn into_error(self) -> SrdaError {
        SrdaError::Interrupted {
            reason: self.reason,
            responses_completed: self.responses_completed,
            checkpoint: self.checkpoint,
        }
    }
}

/// The SRDA estimator. Construct with a config, then call
/// [`Srda::fit_dense`] or [`Srda::fit_sparse`].
#[derive(Debug, Clone)]
pub struct Srda {
    config: SrdaConfig,
}

/// A fitted SRDA model.
#[derive(Debug, Clone)]
pub struct SrdaModel {
    embedding: Embedding,
    n_classes: usize,
    alpha: f64,
    /// Total LSQR iterations across responses (0 for direct solves).
    lsqr_iterations: usize,
    /// Robustness ledger: what the fit actually did (see [`FitReport`]).
    fit_report: FitReport,
}

impl Srda {
    /// Create an estimator with the given configuration.
    pub fn new(config: SrdaConfig) -> Self {
        Srda { config }
    }

    /// Convenience: default configuration (`α = 1`, normal equations).
    pub fn default_dense() -> Self {
        Srda::new(SrdaConfig::default())
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> &SrdaConfig {
        &self.config
    }

    /// The kernel executor this fit will run on; it carries the config's
    /// recorder so kernel-dispatch counters land in the same registry.
    fn executor(&self) -> Executor {
        Executor::with_recorder(self.config.exec, self.config.recorder)
    }

    /// Fit on dense data (`x`: samples as rows) with labels `y`. A
    /// governed fit whose budget runs out surfaces as
    /// [`SrdaError::Interrupted`]; use [`Srda::fit_dense_outcome`] to get
    /// the partial state instead.
    pub fn fit_dense(&self, x: &Mat, y: &[usize]) -> Result<SrdaModel> {
        self.fit_dense_outcome(x, y)?.into_model()
    }

    /// Fit on dense data, returning a [`FitOutcome`] so an interrupted
    /// run hands back its partial state (and checkpoint path) instead of
    /// an error.
    pub fn fit_dense_outcome(&self, x: &Mat, y: &[usize]) -> Result<FitOutcome> {
        self.instrumented_fit(|| self.fit_dense_outcome_inner(x, y))
    }

    /// Run `f` under the top-level `fit` span, streaming the flam it
    /// spends into the registry counter `flam.fit`. With a disabled
    /// recorder this is one branch and a direct call.
    fn instrumented_fit<T>(&self, f: impl FnOnce() -> T) -> T {
        let rec = self.config.recorder;
        if !rec.is_enabled() {
            return f();
        }
        rec.gauge("fit.alpha", self.config.alpha);
        let _span = rec.span("fit");
        match rec.counter("flam.fit").cell() {
            Some(cell) => flam::scoped(cell, f),
            None => f(),
        }
    }

    fn fit_dense_outcome_inner(&self, x: &Mat, y: &[usize]) -> Result<FitOutcome> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_dense",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let rec = self.config.recorder;
        let prepare = srda_obs::span!(rec, "fit/prepare");
        let index = ClassIndex::new(y)?;
        let ybar = responses::generate(&index);
        prepare.finish();
        let n = x.ncols();

        match self.config.solver {
            SrdaSolver::NormalEquations => {
                self.reject_resume_for_direct()?;
                // materialize the augmented matrix once; budget-checked
                let need = x.nrows() * (n + 1) * 8;
                self.check_budget(need, "augmented data matrix")?;
                let x_aug = x.append_constant_col(1.0);
                // RobustRidge walks the recovery ladder (direct →
                // jittered retries → damped LSQR) instead of propagating
                // a Singular/NotPositiveDefinite error to the caller
                let ridge_span = srda_obs::span!(rec, "fit/ridge");
                let outcome = RobustRidge::with_executor(RobustConfig::default(), self.executor())
                    .solve_governed(
                        &x_aug,
                        &ybar,
                        self.config.alpha,
                        self.config.governor.as_ref(),
                    )?;
                ridge_span.finish();
                match outcome {
                    RobustOutcome::Solved(w_aug, rep) => {
                        let mut report = FitReport::from_robust(&rep, ybar.ncols());
                        self.warn_checkpoint_unsupported(&mut report);
                        Ok(FitOutcome::Complete(self.finish(
                            w_aug,
                            n,
                            index.n_classes(),
                            0,
                            report,
                        )))
                    }
                    RobustOutcome::Interrupted { reason, report } => {
                        let partial = FitReport {
                            warnings: report.warnings,
                            recoveries: report.actions,
                            ..FitReport::default()
                        };
                        Ok(self.direct_interrupted(reason, partial, ybar.ncols()))
                    }
                }
            }
            SrdaSolver::Lsqr { max_iter, tol } => {
                let inner = ExecDense::new(x, self.executor());
                let op = AugmentedOp::new(&inner);
                self.fit_lsqr_outcome(&op, &ybar, y, n, index.n_classes(), max_iter, tol)
            }
        }
    }

    /// Fit on sparse data without ever densifying it. A governed fit
    /// whose budget runs out surfaces as [`SrdaError::Interrupted`]; use
    /// [`Srda::fit_sparse_outcome`] to get the partial state instead.
    pub fn fit_sparse(&self, x: &CsrMatrix, y: &[usize]) -> Result<SrdaModel> {
        self.fit_sparse_outcome(x, y)?.into_model()
    }

    /// Fit on sparse data, returning a [`FitOutcome`] so an interrupted
    /// run hands back its partial state (and checkpoint path) instead of
    /// an error.
    pub fn fit_sparse_outcome(&self, x: &CsrMatrix, y: &[usize]) -> Result<FitOutcome> {
        self.instrumented_fit(|| self.fit_sparse_outcome_inner(x, y))
    }

    fn fit_sparse_outcome_inner(&self, x: &CsrMatrix, y: &[usize]) -> Result<FitOutcome> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_sparse",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let rec = self.config.recorder;
        let prepare = srda_obs::span!(rec, "fit/prepare");
        let index = ClassIndex::new(y)?;
        let ybar = responses::generate(&index);
        prepare.finish();
        let n = x.ncols();

        match self.config.solver {
            SrdaSolver::NormalEquations => {
                self.reject_resume_for_direct()?;
                // Dual normal equations: K = X̃X̃ᵀ + αI is m × m and is
                // built from sparse row intersections — X̃ = [X | 1] adds
                // +1 to every Gram entry. A declined memory budget is a
                // recovery (matrix-free LSQR), not a fatal error: the
                // warning records exactly why the dense Gram was refused.
                let m = x.nrows();
                let exec = self.executor();
                let budget = self.config.memory_budget_bytes.unwrap_or(usize::MAX);
                let mut report = FitReport::default();
                let gram_span = srda_obs::span!(rec, "fit/gram");
                let gram = match x.gram_t_dense_checked_exec(budget, &exec) {
                    Ok(k) => Some(k),
                    Err(decline) => {
                        report.warnings.push(format!(
                            "sparse dual Gram declined: {decline}; \
                             falling back to matrix-free LSQR"
                        ));
                        None
                    }
                };
                gram_span.finish();
                if let Some(mut k) = gram {
                    let factor_span = srda_obs::span!(rec, "fit/factor");
                    for i in 0..m {
                        for j in 0..m {
                            k[(i, j)] += 1.0; // the bias column's contribution
                        }
                    }
                    k.add_to_diag(self.config.alpha);

                    // the same ladder RobustRidge walks on dense data,
                    // shared via `factor_ladder` (the dual Gram matrix is
                    // built from sparse rows, so the factor step differs):
                    // factor → escalating jitter → matrix-free LSQR
                    let alpha = self.config.alpha;
                    let base = if alpha > 0.0 {
                        alpha * 10.0
                    } else {
                        1e-10 * k.max_abs().max(1.0)
                    };
                    let mut applied = 0.0;
                    // Each rung factors, solves, and certifies every
                    // response against the system actually factored (K with
                    // its jitter applied) — the same certificate-driven
                    // ladder RobustRidge walks on dense data: a Suspect
                    // verdict after refinement is a retryable breakdown,
                    // because extra diagonal loading lowers κ, which is
                    // exactly what shrinks the failed forward-error bound.
                    // One Hager estimate per factorization, shared by all
                    // responses.
                    let outcome = factor_ladder_governed(
                        alpha,
                        base,
                        3,
                        10.0,
                        "sparse dual solve",
                        self.config.governor.as_ref(),
                        |jitter| {
                            k.add_to_diag(jitter - applied);
                            applied = jitter;
                            let chol = srda_linalg::Cholesky::factor(&k)?;
                            let backsub_span = srda_obs::span!(rec, "fit/backsub");
                            let mut u = chol.solve_mat(&ybar)?;
                            backsub_span.finish();
                            let certify_span = srda_obs::span!(rec, "fit/certify");
                            let cond = chol.condition_estimate();
                            let c1 = ybar.ncols();
                            let mut certs = Vec::with_capacity(c1);
                            for j in 0..c1 {
                                let bj = ybar.col(j);
                                let mut uj = u.col(j);
                                let cert = certify_spd_solve(&chol, &k, cond, &bj, &mut uj, 3)?;
                                if cert.refinement_steps > 0 {
                                    u.set_col(j, &uj);
                                }
                                certs.push(cert);
                            }
                            certify_span.finish();
                            if let Some(bad) = certs.iter().find(|c| c.is_suspect()) {
                                return Err(LinalgError::CertificationFailed {
                                    error_bound: bad.error_bound(),
                                });
                            }
                            Ok((u, certs, cond))
                        },
                    )?;
                    factor_span.finish();
                    report.warnings.extend(outcome.warnings);
                    report.recoveries.extend(outcome.actions);
                    if let Some(reason) = outcome.interrupted {
                        return Ok(self.direct_interrupted(reason, report, ybar.ncols()));
                    }
                    if let Some(((u, certs, cond), jitter)) = outcome.value {
                        // w̃ = X̃ᵀ u : feature part via sparse
                        // transpose-multiply, bias part via column sums of u
                        let backsub_span = srda_obs::span!(rec, "fit/backsub");
                        let c1 = ybar.ncols();
                        let mut w_aug = Mat::zeros(n + 1, c1);
                        for j in 0..c1 {
                            let uj = u.col(j);
                            let wj = x.matvec_t_exec(&uj, &exec)?;
                            for (i, &v) in wj.iter().enumerate() {
                                w_aug[(i, j)] = v;
                            }
                            w_aug[(n, j)] = uj.iter().sum();
                        }
                        backsub_span.finish();
                        if w_aug.as_slice().iter().all(|v| v.is_finite()) {
                            report.condition_estimate = Some(cond);
                            report.certificates = certs;
                            let solver = if jitter > 0.0 {
                                ResponseSolver::DirectJittered { jitter }
                            } else {
                                ResponseSolver::Direct
                            };
                            report.responses = vec![solver; c1];
                            self.warn_checkpoint_unsupported(&mut report);
                            return Ok(FitOutcome::Complete(self.finish(
                                w_aug,
                                n,
                                index.n_classes(),
                                0,
                                report,
                            )));
                        }
                        report
                            .warnings
                            .push("sparse dual solve produced non-finite weights".into());
                        report.warnings.push(
                            "all factorizations failed; weights computed by damped LSQR".into(),
                        );
                    } else {
                        report.warnings.push(
                            "every rung failed factorization or certification; \
                             weights computed by damped LSQR"
                                .into(),
                        );
                    }
                }
                // every factorization failed, poisoned the weights, or was
                // declined by the budget: solve matrix-free, which never
                // forms the Gram matrix
                report.recoveries.push(RecoveryAction::LsqrFallback);
                let backend = exec.backend_name();
                let inner = ExecCsr::new(x, exec);
                let op = AugmentedOp::new(&inner);
                let ctl = ResponseControls {
                    governor: self.config.governor.as_ref(),
                    checkpoint: None,
                    resume: None,
                    fingerprint: None,
                    recorder: rec,
                    backend,
                };
                match solve_lsqr_responses_controlled(
                    &op,
                    &ybar,
                    self.config.alpha,
                    500,
                    1e-10,
                    self.config.parallel_responses,
                    &ctl,
                )? {
                    ResponsesOutcome::Done {
                        w,
                        iterations,
                        report: mut fb,
                    } => {
                        report.warnings.append(&mut fb.warnings);
                        report.certificates = std::mem::take(&mut fb.certificates);
                        report.responses = vec![ResponseSolver::LsqrFallback; ybar.ncols()];
                        self.warn_checkpoint_unsupported(&mut report);
                        Ok(FitOutcome::Complete(self.finish(
                            w,
                            n,
                            index.n_classes(),
                            iterations,
                            report,
                        )))
                    }
                    ResponsesOutcome::Interrupted {
                        reason,
                        report: fb,
                        responses_completed,
                        iterations,
                        ..
                    } => {
                        report.warnings.extend(fb.warnings);
                        report.certificates = fb.certificates;
                        report.refresh_certificate_summary();
                        report.interrupt = Some(reason);
                        Ok(FitOutcome::Interrupted(InterruptedFit {
                            reason,
                            report,
                            responses_completed,
                            total_responses: ybar.ncols(),
                            iterations,
                            checkpoint: None,
                        }))
                    }
                }
            }
            SrdaSolver::Lsqr { max_iter, tol } => {
                let inner = ExecCsr::new(x, self.executor());
                let op = AugmentedOp::new(&inner);
                self.fit_lsqr_outcome(&op, &ybar, y, n, index.n_classes(), max_iter, tol)
            }
        }
    }

    /// Fit through any [`LinearOperator`] — including
    /// [`srda_sparse::DiskCsr`], which realizes the paper's closing claim
    /// that SRDA still applies "with some reasonable disk I/O" when the
    /// data does not fit in memory: LSQR touches the operator only through
    /// `X·u` / `Xᵀ·v`, each one sequential scan of the on-disk non-zeros.
    ///
    /// Only the LSQR solver works matrix-free, so this returns an error
    /// for [`SrdaSolver::NormalEquations`]. The operator is wrapped with
    /// the §III.B bias column automatically (pass the *raw* data operator).
    pub fn fit_operator<A: LinearOperator + ?Sized + Sync>(
        &self,
        x: &A,
        y: &[usize],
    ) -> Result<SrdaModel> {
        self.fit_operator_outcome(x, y)?.into_model()
    }

    /// [`Srda::fit_operator`], returning a [`FitOutcome`] so an
    /// interrupted run hands back its partial state (and checkpoint
    /// path) instead of an error.
    pub fn fit_operator_outcome<A: LinearOperator + ?Sized + Sync>(
        &self,
        x: &A,
        y: &[usize],
    ) -> Result<FitOutcome> {
        self.instrumented_fit(|| self.fit_operator_outcome_inner(x, y))
    }

    fn fit_operator_outcome_inner<A: LinearOperator + ?Sized + Sync>(
        &self,
        x: &A,
        y: &[usize],
    ) -> Result<FitOutcome> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_operator",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let SrdaSolver::Lsqr { max_iter, tol } = self.config.solver else {
            return Err(SrdaError::InvalidLabels {
                context: "fit_operator requires the LSQR solver (matrix-free)".into(),
            });
        };
        let prepare = srda_obs::span!(self.config.recorder, "fit/prepare");
        let index = ClassIndex::new(y)?;
        let ybar = responses::generate(&index);
        prepare.finish();
        let n = x.ncols();
        let op = AugmentedOp::new(x);
        self.fit_lsqr_outcome(&op, &ybar, y, n, index.n_classes(), max_iter, tol)
    }

    /// Incrementally refit on an **updated** sparse dataset (e.g. the old
    /// corpus plus freshly labeled documents), warm-starting each response
    /// solve from `previous`'s weights.
    ///
    /// LSQR converges geometrically from its start point, so when the data
    /// change is small the correction is tiny and far fewer iterations are
    /// needed than a cold [`Srda::fit_sparse`] — the spectral-regression
    /// answer to IDR/QR's incremental-update selling point. The class
    /// count and feature count must match `previous`; `tol` should be
    /// non-zero so the solver can stop early (that is the whole point).
    pub fn fit_sparse_incremental(
        &self,
        x: &CsrMatrix,
        y: &[usize],
        previous: &SrdaModel,
        max_iter: usize,
        tol: f64,
    ) -> Result<SrdaModel> {
        self.instrumented_fit(|| self.fit_sparse_incremental_inner(x, y, previous, max_iter, tol))
    }

    fn fit_sparse_incremental_inner(
        &self,
        x: &CsrMatrix,
        y: &[usize],
        previous: &SrdaModel,
        max_iter: usize,
        tol: f64,
    ) -> Result<SrdaModel> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_sparse_incremental",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        if previous.embedding().n_features() != x.ncols() {
            return Err(SrdaError::ShapeMismatch {
                op: "fit_sparse_incremental (features)",
                expected: previous.embedding().n_features(),
                got: x.ncols(),
            });
        }
        let index = ClassIndex::new(y)?;
        if index.n_classes() != previous.n_classes() {
            return Err(SrdaError::InvalidLabels {
                context: format!(
                    "class count changed: {} -> {}",
                    previous.n_classes(),
                    index.n_classes()
                ),
            });
        }
        let ybar = responses::generate(&index);
        let n = x.ncols();
        let inner = ExecCsr::new(x, self.executor());
        let op = AugmentedOp::new(&inner);
        let cfg = srda_solvers::lsqr::LsqrConfig {
            damp: self.config.alpha.sqrt(),
            max_iter,
            tol,
        };
        let prev_w = previous.embedding().weights();
        let prev_b = previous.embedding().bias();
        let mut w_aug = Mat::zeros(n + 1, ybar.ncols());
        let mut total_iters = 0;
        let mut report = FitReport::default();
        let mut x0 = vec![0.0; n + 1];
        for j in 0..ybar.ncols() {
            let _span = srda_obs::span!(self.config.recorder, "fit/response[{j}]/lsqr_warm");
            for i in 0..n {
                x0[i] = prev_w[(i, j)];
            }
            x0[n] = prev_b[j];
            let r = srda_solvers::lsqr::lsqr_warm_governed(
                &op,
                &ybar.col(j),
                &x0,
                &cfg,
                self.config.governor.as_ref(),
            );
            if let StopReason::Interrupted(reason) = r.stop {
                return Err(SrdaError::Interrupted {
                    reason,
                    responses_completed: j,
                    checkpoint: None,
                });
            }
            record_lsqr_response(&mut report, j, &r, tol, &op, &ybar.col(j), cfg.damp)?;
            total_iters += r.iterations;
            w_aug.set_col(j, &r.x);
        }
        Ok(self.finish(w_aug, n, index.n_classes(), total_iters, report))
    }

    fn check_budget(&self, needed: usize, context: &'static str) -> Result<()> {
        if let Some(budget) = self.config.memory_budget_bytes {
            if needed > budget {
                return Err(SrdaError::MemoryBudgetExceeded {
                    needed_bytes: needed,
                    budget_bytes: budget,
                    context,
                });
            }
        }
        Ok(())
    }

    /// Resume only makes sense for the (iterative, checkpointable) LSQR
    /// solver; silently ignoring `resume_from` on a direct solve would
    /// hide a misconfiguration.
    fn reject_resume_for_direct(&self) -> Result<()> {
        if self.config.resume_from.is_some() {
            return Err(SrdaError::Checkpoint(CheckpointError::Mismatch(
                "resume requires the LSQR solver; this fit is configured \
                 for normal equations"
                    .into(),
            )));
        }
        Ok(())
    }

    /// Record that a configured checkpoint policy was ignored because the
    /// fit did not run through the (checkpointable) LSQR response loop.
    fn warn_checkpoint_unsupported(&self, report: &mut FitReport) {
        if self.config.checkpoint.is_some() {
            report.warnings.push(
                "checkpointing is only supported for LSQR fits; \
                 no checkpoint was written"
                    .into(),
            );
        }
    }

    /// Package an interrupt that landed before any response was solved
    /// (direct-solver paths, which have no resumable state).
    fn direct_interrupted(
        &self,
        reason: Interrupt,
        mut report: FitReport,
        total_responses: usize,
    ) -> FitOutcome {
        report.interrupt = Some(reason);
        FitOutcome::Interrupted(InterruptedFit {
            reason,
            report,
            responses_completed: 0,
            total_responses,
            iterations: 0,
            checkpoint: None,
        })
    }

    /// The governed, checkpointable LSQR response loop shared by every
    /// `fit_*` path that runs the configured LSQR solver.
    #[allow(clippy::too_many_arguments)]
    fn fit_lsqr_outcome<A: LinearOperator + ?Sized + Sync>(
        &self,
        op: &A,
        ybar: &Mat,
        y: &[usize],
        n: usize,
        n_classes: usize,
        max_iter: usize,
        tol: f64,
    ) -> Result<FitOutcome> {
        let k = ybar.ncols();
        // the fingerprint binds persisted state to this exact problem; it
        // is only needed when state crosses the process boundary
        let want_ckpt = self.config.checkpoint.is_some() || self.config.resume_from.is_some();
        let fingerprint = if want_ckpt {
            Some(FitFingerprint::new(
                op.nrows(),
                n,
                k,
                self.config.alpha,
                max_iter,
                tol,
                y,
            ))
        } else {
            None
        };
        let resume = match &self.config.resume_from {
            Some(path) => {
                let ckpt = FitCheckpoint::read(path)?;
                ckpt.fingerprint
                    .ensure_matches(fingerprint.as_ref().expect("fingerprint exists on resume"))?;
                if ckpt.completed.len() > k
                    || (ckpt.completed.len() == k && ckpt.in_flight.is_some())
                    || ckpt.completed.iter().any(|c| c.x.len() != op.ncols())
                {
                    return Err(SrdaError::Checkpoint(CheckpointError::Corrupt(
                        "checkpoint contents inconsistent with its fingerprint".into(),
                    )));
                }
                Some(ckpt)
            }
            None => None,
        };
        let ckpt_path = match &self.config.checkpoint {
            Some(policy) => {
                std::fs::create_dir_all(&policy.dir).map_err(|e| {
                    SrdaError::Checkpoint(CheckpointError::Io(format!(
                        "creating checkpoint dir {}: {e}",
                        policy.dir.display()
                    )))
                })?;
                Some((policy.dir.join(FIT_CHECKPOINT_FILE), policy.every))
            }
            None => None,
        };
        let ctl = ResponseControls {
            governor: self.config.governor.as_ref(),
            checkpoint: ckpt_path.as_ref().map(|(p, every)| (p.as_path(), *every)),
            resume,
            fingerprint,
            recorder: self.config.recorder,
            backend: self.executor().backend_name(),
        };
        match solve_lsqr_responses_controlled(
            op,
            ybar,
            self.config.alpha,
            max_iter,
            tol,
            self.config.parallel_responses,
            &ctl,
        )? {
            ResponsesOutcome::Done {
                w,
                iterations,
                report,
            } => {
                // a finished fit leaves no stale checkpoint behind — a
                // later run must not accidentally "resume" a done fit
                if let Some((path, _)) = &ckpt_path {
                    let _ = std::fs::remove_file(path);
                }
                Ok(FitOutcome::Complete(
                    self.finish(w, n, n_classes, iterations, report),
                ))
            }
            ResponsesOutcome::Interrupted {
                reason,
                mut report,
                responses_completed,
                iterations,
                checkpoint,
            } => {
                report.interrupt = Some(reason);
                report.refresh_certificate_summary();
                let written = match (&ckpt_path, checkpoint) {
                    (Some((path, _)), Some(state)) => {
                        state.write_atomic(path)?;
                        Some(path.clone())
                    }
                    _ => None,
                };
                Ok(FitOutcome::Interrupted(InterruptedFit {
                    reason,
                    report,
                    responses_completed,
                    total_responses: k,
                    iterations,
                    checkpoint: written,
                }))
            }
        }
    }

    fn finish(
        &self,
        w_aug: Mat,
        n: usize,
        n_classes: usize,
        lsqr_iterations: usize,
        mut fit_report: FitReport,
    ) -> SrdaModel {
        fit_report.refresh_certificate_summary();
        let rec = self.config.recorder;
        if rec.is_enabled() {
            if let Some(worst) = fit_report.worst_backward_error {
                rec.gauge("fit.worst_backward_error", worst);
                let suspect = fit_report
                    .certificates
                    .iter()
                    .filter(|c| c.is_suspect())
                    .count();
                rec.gauge("fit.certificates.suspect", suspect as f64);
            }
        }
        // split [W; bᵀ] into the weight matrix and the intercept row
        let weights = w_aug.block(0, n, 0, w_aug.ncols());
        let bias = w_aug.row(n).to_vec();
        SrdaModel {
            embedding: Embedding::new(weights, bias).expect("split shapes always consistent"),
            n_classes,
            alpha: self.config.alpha,
            lsqr_iterations,
            fit_report,
        }
    }
}

/// Fold one LSQR response outcome into the fit report. A diverged solve
/// means the weight column is garbage (LSQR resets it to zero), so the
/// whole fit fails loudly instead of returning a silently broken model —
/// this is how a poisoned right-hand side or a failing disk operator
/// surfaces to the caller.
///
/// Every recorded response also gets a post-hoc `SolveCertificate`
/// (see `srda_solvers::certify_operator`): a pure function of the final
/// iterate, so serial/threaded and fresh/resumed runs record bitwise-equal
/// certificates. A Suspect verdict only warns when a tolerance was
/// requested — a fixed-iteration run (`tol = 0`, the paper's sparse
/// configuration) is *expected* to stop wherever its budget ends, and the
/// certificate already records how far that was.
fn record_lsqr_response<A: LinearOperator + ?Sized>(
    report: &mut FitReport,
    j: usize,
    r: &srda_solvers::lsqr::LsqrResult,
    tol: f64,
    op: &A,
    col: &[f64],
    damp: f64,
) -> Result<()> {
    match r.stop {
        StopReason::Diverged => {
            return Err(SrdaError::Linalg(LinalgError::NonFinite {
                context: "LSQR response solve (diverged: non-finite input or operator output)",
            }));
        }
        StopReason::Stagnated => report.warnings.push(format!(
            "response {j}: LSQR stagnated after {} iterations (residual {:.3e})",
            r.iterations, r.residual_norm
        )),
        StopReason::MaxIterations if tol > 0.0 => report.warnings.push(format!(
            "response {j}: LSQR hit the iteration cap ({}) before reaching tol",
            r.iterations
        )),
        StopReason::Interrupted(_) => {
            unreachable!("interrupted responses are handled before recording")
        }
        _ => {}
    }
    let cert = certify_operator(op, col, &r.x, damp);
    if cert.is_suspect() && tol > 0.0 {
        report.warnings.push(format!(
            "response {j}: LSQR solution failed certification \
             (relative NE residual {:.3e})",
            cert.backward_error
        ));
    }
    report.certificates.push(cert);
    report.responses.push(ResponseSolver::Lsqr {
        iterations: r.iterations,
        stop: r.stop,
    });
    Ok(())
}

/// Governance/persistence inputs threaded through the response loop.
struct ResponseControls<'a> {
    /// Budget/cancellation authority shared by every solve.
    governor: Option<&'a RunGovernor>,
    /// Checkpoint file and refresh period, when persistence is on.
    checkpoint: Option<(&'a Path, usize)>,
    /// Persisted state to continue from (already fingerprint-verified).
    resume: Option<FitCheckpoint>,
    /// Problem identity; `Some` exactly when `checkpoint` or `resume` is.
    fingerprint: Option<FitFingerprint>,
    /// Observability sink for per-response spans and solver telemetry.
    recorder: Recorder,
    /// Backend name the operator's kernels run on, for trace metadata.
    backend: &'static str,
}

/// What the response loop produced.
enum ResponsesOutcome {
    /// All `c − 1` responses solved.
    Done {
        w: Mat,
        iterations: usize,
        report: FitReport,
    },
    /// The governor stopped the loop; `checkpoint` carries the resumable
    /// state when a fingerprint was available (serial runs only).
    Interrupted {
        reason: Interrupt,
        report: FitReport,
        responses_completed: usize,
        iterations: usize,
        checkpoint: Option<FitCheckpoint>,
    },
}

/// Solve the `c − 1` damped least-squares problems with LSQR — one
/// response at a time, or one thread per response when `parallel` is set
/// (they are fully independent). A diverged response fails the whole fit
/// (see [`record_lsqr_response`]); a governor interrupt returns the
/// partial state instead. Checkpoint emission and resume require the
/// deterministic serial order, so `parallel` is overridden (with a
/// warning) when either is requested.
#[allow(clippy::too_many_arguments)]
fn solve_lsqr_responses_controlled<A: LinearOperator + ?Sized + Sync>(
    op: &A,
    ybar: &Mat,
    alpha: f64,
    max_iter: usize,
    tol: f64,
    parallel: bool,
    ctl: &ResponseControls<'_>,
) -> Result<ResponsesOutcome> {
    let cfg = LsqrConfig {
        damp: alpha.sqrt(),
        max_iter,
        tol,
    };
    let k = ybar.ncols();
    let mut report = FitReport::default();
    let mut w = Mat::zeros(op.ncols(), k);
    let mut total_iters = 0;
    let mut start_j = 0;
    let mut in_flight: Option<LsqrCheckpoint> = None;
    // replay the persisted prefix: completed columns land in `w` exactly
    // as solved, their ledger entries and warnings are restored, and the
    // partially-solved response resumes from its in-flight solver state
    let mut completed: Vec<CompletedResponse> = Vec::new();
    if let Some(ckpt) = &ctl.resume {
        for (j, c) in ckpt.completed.iter().enumerate() {
            w.set_col(j, &c.x);
            total_iters += c.iterations;
            // the certificate is a pure function of the persisted iterate,
            // so recomputing it here reproduces the original run's value
            // bitwise (any suspect-warning text rides in ckpt.warnings)
            report
                .certificates
                .push(certify_operator(op, &ybar.col(j), &c.x, cfg.damp));
            report.responses.push(ResponseSolver::Lsqr {
                iterations: c.iterations,
                stop: c.stop,
            });
        }
        report.warnings = ckpt.warnings.clone();
        start_j = ckpt.completed.len();
        in_flight = ckpt.in_flight.clone();
        completed = ckpt.completed.clone();
    }

    let persistence = ctl.checkpoint.is_some() || ctl.resume.is_some();
    let use_parallel = parallel && k > 1 && !persistence;
    if parallel && k > 1 && persistence {
        report.warnings.push(
            "parallel responses disabled: checkpoint/resume requires the \
             deterministic serial response order"
                .into(),
        );
    }

    if use_parallel {
        // telemetry channels are opened here, in serial response order, so
        // the trace list in the recorder snapshot is deterministic no
        // matter how the worker threads interleave
        let rec = ctl.recorder;
        let traces: Vec<Option<SolverTrace>> = (0..k)
            .map(|j| {
                let t = if rec.is_enabled() {
                    rec.solver_trace(format!("fit/response[{j}]/lsqr"))
                } else {
                    None
                };
                if let Some(t) = &t {
                    t.set_backend(ctl.backend);
                }
                t
            })
            .collect();
        // worker threads have their own (empty) flam sink stacks; hand
        // them this thread's sinks so `flam.fit` keeps counting
        let sinks = flam::current_sinks();
        let results: Vec<LsqrResult> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|j| {
                    let cfg = &cfg;
                    let col = ybar.col(j);
                    let governor = ctl.governor;
                    let trace = traces[j].clone();
                    let sinks = sinks.clone();
                    s.spawn(move |_| {
                        flam::with_sinks(sinks, || {
                            let _span = srda_obs::span!(rec, "fit/response[{j}]/lsqr");
                            let controls = SolveControls {
                                governor,
                                telemetry: trace.as_ref(),
                                ..SolveControls::default()
                            };
                            lsqr_controlled(op, &col, cfg, &controls)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lsqr thread"))
                .collect()
        })
        .expect("response thread scope");
        let mut interrupted: Option<Interrupt> = None;
        let mut responses_completed = 0;
        for (j, r) in results.iter().enumerate() {
            total_iters += r.iterations;
            if let StopReason::Interrupted(reason) = r.stop {
                interrupted.get_or_insert(reason);
                continue;
            }
            record_lsqr_response(&mut report, j, r, tol, op, &ybar.col(j), cfg.damp)?;
            responses_completed += 1;
            w.set_col(j, &r.x);
        }
        return Ok(match interrupted {
            None => ResponsesOutcome::Done {
                w,
                iterations: total_iters,
                report,
            },
            Some(reason) => ResponsesOutcome::Interrupted {
                reason,
                report,
                responses_completed,
                iterations: total_iters,
                // concurrent solves have no serial prefix to persist
                checkpoint: None,
            },
        });
    }

    for j in start_j..k {
        let col = ybar.col(j);
        let _span = srda_obs::span!(ctl.recorder, "fit/response[{j}]/lsqr");
        let trace = if ctl.recorder.is_enabled() {
            ctl.recorder.solver_trace(format!("fit/response[{j}]/lsqr"))
        } else {
            None
        };
        if let Some(t) = &trace {
            t.set_backend(ctl.backend);
        }
        let resume_this = if j == start_j {
            in_flight.as_ref()
        } else {
            None
        };
        // periodic writer: a snapshot of the finished columns plus the
        // solver's in-flight state, refreshed from inside the LSQR loop
        let writer: Option<Box<dyn Fn(&LsqrCheckpoint) + Sync>> =
            match (ctl.checkpoint, ctl.fingerprint) {
                (Some((path, every)), Some(fp)) if every > 0 => {
                    let prefix = completed.clone();
                    let warnings = report.warnings.clone();
                    let path = path.to_path_buf();
                    Some(Box::new(move |state: &LsqrCheckpoint| {
                        let snapshot = FitCheckpoint {
                            fingerprint: fp,
                            completed: prefix.clone(),
                            in_flight: Some(state.clone()),
                            warnings: warnings.clone(),
                        };
                        // periodic persistence is best-effort: a full disk
                        // must not kill an otherwise-healthy fit (the
                        // interrupt-time write in fit_lsqr_outcome is the
                        // one that reports failures)
                        let _ = snapshot.write_atomic(&path);
                    }))
                }
                _ => None,
            };
        let controls = SolveControls {
            governor: ctl.governor,
            resume: resume_this,
            checkpoint_every: ctl.checkpoint.map_or(0, |(_, every)| every),
            on_checkpoint: writer.as_deref(),
            telemetry: trace.as_ref(),
        };
        let r = lsqr_controlled(op, &col, &cfg, &controls);
        if let StopReason::Interrupted(reason) = r.stop {
            total_iters += r.iterations;
            let checkpoint = ctl.fingerprint.map(|fp| FitCheckpoint {
                fingerprint: fp,
                completed: completed.clone(),
                in_flight: r.checkpoint.map(|b| *b),
                warnings: report.warnings.clone(),
            });
            return Ok(ResponsesOutcome::Interrupted {
                reason,
                report,
                responses_completed: j,
                iterations: total_iters,
                checkpoint,
            });
        }
        record_lsqr_response(&mut report, j, &r, tol, op, &col, cfg.damp)?;
        total_iters += r.iterations;
        if ctl.fingerprint.is_some() {
            completed.push(CompletedResponse {
                x: r.x.clone(),
                iterations: r.iterations,
                stop: r.stop,
            });
        }
        w.set_col(j, &r.x);
    }
    Ok(ResponsesOutcome::Done {
        w,
        iterations: total_iters,
        report,
    })
}

impl SrdaModel {
    /// The learned embedding (`n_features → c − 1` dimensions).
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// Number of classes seen at fit time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Ridge parameter used at fit time.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total LSQR iterations spent (0 when the direct solver was used).
    pub fn lsqr_iterations(&self) -> usize {
        self.lsqr_iterations
    }

    /// The robustness ledger for the fit that produced this model: every
    /// recovery taken, per-response solver outcomes, warnings, and the
    /// Gram-matrix condition estimate. [`FitReport::clean`] is `true`
    /// when nothing went wrong.
    pub fn fit_report(&self) -> &FitReport {
        &self.fit_report
    }

    /// Record what a pre-fit quarantine pass (`srda-data`'s `sanitize`)
    /// did to the training data, so the ledger travels with the model:
    /// a fit on repaired data is not [`FitReport::clean`] unless the
    /// repair was a no-op.
    pub fn attach_quarantine(&mut self, quarantine: crate::report::QuarantineSummary) {
        self.fit_report.quarantine = Some(quarantine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs in 3-D.
    fn blobs() -> (Mat, Vec<usize>) {
        let x = Mat::from_rows(&[
            vec![0.0, 0.1, -0.1],
            vec![0.1, -0.1, 0.0],
            vec![-0.1, 0.0, 0.1],
            vec![0.05, 0.05, 0.0],
            vec![4.0, 4.1, 3.9],
            vec![4.1, 3.9, 4.0],
            vec![3.9, 4.0, 4.1],
            vec![4.0, 4.0, 4.0],
        ])
        .unwrap();
        let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
        (x, y)
    }

    /// Three classes, 4-D, enough samples to be over-determined.
    fn three_blobs() -> (Mat, Vec<usize>) {
        let centers = [
            [0.0, 0.0, 0.0, 0.0],
            [5.0, 0.0, 5.0, 0.0],
            [0.0, 5.0, 0.0, 5.0],
        ];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (k, c) in centers.iter().enumerate() {
            for s in 0..6 {
                let noise = |d: usize| {
                    let x = ((k * 31 + s * 7 + d * 13) as f64 * 12.9898).sin() * 43758.5453;
                    (x - x.floor() - 0.5) * 0.3
                };
                rows.push((0..4).map(|d| c[d] + noise(d)).collect::<Vec<_>>());
                y.push(k);
            }
        }
        (Mat::from_rows(&rows).unwrap(), y)
    }

    fn class_compactness(z: &Mat, y: &[usize]) -> (f64, f64) {
        // (avg within-class dist, avg between-class centroid dist)
        let ci = ClassIndex::new(y).unwrap();
        let (centroids, _) = srda_linalg::stats::class_means(z, y, ci.n_classes()).unwrap();
        let mut within = 0.0;
        for (i, &k) in y.iter().enumerate() {
            within += srda_linalg::vector::dist2_sq(z.row(i), centroids.row(k)).sqrt();
        }
        within /= y.len() as f64;
        let mut between = 0.0;
        let mut pairs = 0;
        for a in 0..ci.n_classes() {
            for b in (a + 1)..ci.n_classes() {
                between += srda_linalg::vector::dist2_sq(centroids.row(a), centroids.row(b)).sqrt();
                pairs += 1;
            }
        }
        (within, between / pairs as f64)
    }

    #[test]
    fn separates_two_blobs() {
        let (x, y) = blobs();
        let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        assert_eq!(model.embedding().n_components(), 1);
        let z = model.embedding().transform_dense(&x).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(
            between > 10.0 * within,
            "within {within}, between {between}"
        );
    }

    #[test]
    fn three_classes_give_two_components() {
        let (x, y) = three_blobs();
        let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        assert_eq!(model.embedding().n_components(), 2);
        assert_eq!(model.n_classes(), 3);
        let z = model.embedding().transform_dense(&x).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(between > 5.0 * within);
    }

    #[test]
    fn lsqr_matches_normal_equations() {
        let (x, y) = three_blobs();
        let ne = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        let it = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 300,
                tol: 0.0,
            },
            ..SrdaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        assert!(it.lsqr_iterations() > 0);
        let w1 = ne.embedding().weights();
        let w2 = it.embedding().weights();
        assert!(
            w1.approx_eq(w2, 1e-6 * w1.max_abs().max(1.0)),
            "max diff {}",
            w1.sub(w2).unwrap().max_abs()
        );
        for (b1, b2) in ne.embedding().bias().iter().zip(it.embedding().bias()) {
            assert!((b1 - b2).abs() < 1e-6);
        }
    }

    #[test]
    fn sparse_path_matches_dense_path() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        for solver in [
            SrdaSolver::NormalEquations,
            SrdaSolver::Lsqr {
                max_iter: 300,
                tol: 0.0,
            },
        ] {
            let cfg = SrdaConfig {
                solver,
                ..SrdaConfig::default()
            };
            let md = Srda::new(cfg.clone()).fit_dense(&x, &y).unwrap();
            let ms = Srda::new(cfg).fit_sparse(&xs, &y).unwrap();
            let wd = md.embedding().weights();
            let ws = ms.embedding().weights();
            assert!(
                wd.approx_eq(ws, 1e-6 * wd.max_abs().max(1.0)),
                "{solver:?}: max diff {}",
                wd.sub(ws).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn high_dimensional_small_sample() {
        // n ≫ m: the singular regime that breaks plain LDA; SRDA must be
        // fine (dual normal equations / ridge make it well-posed)
        let m = 10;
        let n = 200;
        let x = Mat::from_fn(m, n, |i, j| {
            let base = if i < 5 { 0.0 } else { 3.0 };
            let h = ((i * 131 + j * 37) as f64 * 12.9898).sin() * 43758.5453;
            base + (h - h.floor() - 0.5)
        });
        let y: Vec<usize> = (0..m).map(|i| usize::from(i >= 5)).collect();
        let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        let z = model.embedding().transform_dense(&x).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(between > 3.0 * within, "within {within} between {between}");
    }

    #[test]
    fn alpha_zero_limit_interpolates_training_responses() {
        // Corollary 3: with linearly independent samples and α → 0 the
        // embedding collapses each training class to a single point.
        let (x, y) = three_blobs(); // 18 samples in 4-D: NOT independent
                                    // make them independent by embedding into high dimension
        let hi = x
            .hcat(&Mat::from_fn(18, 30, |i, j| {
                let h = ((i * 17 + j * 29) as f64 * 78.233).sin() * 43758.5453;
                (h - h.floor() - 0.5) * 2.0
            }))
            .unwrap();
        let model = Srda::new(SrdaConfig {
            alpha: 1e-10,
            ..SrdaConfig::default()
        })
        .fit_dense(&hi, &y)
        .unwrap();
        let z = model.embedding().transform_dense(&hi).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(
            within < 1e-6 * between,
            "classes did not collapse: within {within}, between {between}"
        );
    }

    #[test]
    fn label_length_mismatch_rejected() {
        let (x, _) = blobs();
        let err = Srda::default_dense().fit_dense(&x, &[0, 1]);
        assert!(matches!(err, Err(SrdaError::ShapeMismatch { .. })));
    }

    #[test]
    fn single_class_rejected() {
        let (x, _) = blobs();
        assert!(Srda::default_dense().fit_dense(&x, &[0; 8]).is_err());
    }

    #[test]
    fn memory_budget_enforced_dense() {
        let (x, y) = blobs();
        let cfg = SrdaConfig {
            memory_budget_bytes: Some(16),
            ..SrdaConfig::default()
        };
        let err = Srda::new(cfg).fit_dense(&x, &y);
        assert!(matches!(err, Err(SrdaError::MemoryBudgetExceeded { .. })));
    }

    #[test]
    fn memory_budget_enforced_sparse_dual() {
        let (x, y) = blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        let cfg = SrdaConfig {
            memory_budget_bytes: Some(16),
            ..SrdaConfig::default()
        };
        // the 8×8 dual Gram needs 512 bytes; a 16-byte budget declines it
        // and the fit recovers matrix-free, recording exactly why
        let model = Srda::new(cfg).fit_sparse(&xs, &y).unwrap();
        let rep = model.fit_report();
        assert!(!rep.clean());
        assert!(rep.recoveries.contains(&RecoveryAction::LsqrFallback));
        assert!(
            rep.warnings
                .iter()
                .any(|w| w.contains("512 bytes") && w.contains("16 bytes")),
            "decline warning must name needed vs budget bytes: {:?}",
            rep.warnings
        );
        assert!(rep
            .responses
            .iter()
            .all(|s| *s == ResponseSolver::LsqrFallback));
        // the recovered model must still separate the blobs
        let z = model.embedding().transform_dense(&x).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(
            between > 10.0 * within,
            "within {within}, between {between}"
        );
        // LSQR path needs no dense scratch, so the same budget is clean
        let cfg2 = SrdaConfig {
            memory_budget_bytes: Some(16),
            ..SrdaConfig::lsqr_default()
        };
        let m2 = Srda::new(cfg2).fit_sparse(&xs, &y).unwrap();
        assert!(m2.fit_report().clean());
    }

    #[test]
    fn threaded_exec_matches_serial_bitwise() {
        // the executor refactor's contract: any backend / thread count
        // produces bit-identical models
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        for solver in [
            SrdaSolver::NormalEquations,
            SrdaSolver::Lsqr {
                max_iter: 60,
                tol: 0.0,
            },
        ] {
            let serial = SrdaConfig {
                solver,
                exec: ExecPolicy::serial(),
                ..SrdaConfig::default()
            };
            let threaded = SrdaConfig {
                solver,
                exec: ExecPolicy::threaded(4),
                ..SrdaConfig::default()
            };
            let md_s = Srda::new(serial.clone()).fit_dense(&x, &y).unwrap();
            let md_t = Srda::new(threaded.clone()).fit_dense(&x, &y).unwrap();
            assert!(md_s
                .embedding()
                .weights()
                .approx_eq(md_t.embedding().weights(), 0.0));
            assert_eq!(md_s.embedding().bias(), md_t.embedding().bias());
            let ms_s = Srda::new(serial).fit_sparse(&xs, &y).unwrap();
            let ms_t = Srda::new(threaded).fit_sparse(&xs, &y).unwrap();
            assert!(ms_s
                .embedding()
                .weights()
                .approx_eq(ms_t.embedding().weights(), 0.0));
        }
    }

    #[test]
    fn transform_unseen_data() {
        let (x, y) = blobs();
        let model = Srda::default_dense().fit_dense(&x, &y).unwrap();
        // points near each blob center map near the respective embeddings
        let test = Mat::from_rows(&[vec![0.02, 0.0, 0.02], vec![4.05, 4.0, 3.95]]).unwrap();
        let zt = model.embedding().transform_dense(&test).unwrap();
        let z = model.embedding().transform_dense(&x).unwrap();
        let d0 = (zt[(0, 0)] - z[(0, 0)]).abs();
        let d1 = (zt[(0, 0)] - z[(4, 0)]).abs();
        assert!(d0 < d1);
    }

    #[test]
    fn larger_alpha_shrinks_weights() {
        let (x, y) = three_blobs();
        let norm = |alpha: f64| {
            let m = Srda::new(SrdaConfig {
                alpha,
                ..SrdaConfig::default()
            })
            .fit_dense(&x, &y)
            .unwrap();
            m.embedding().weights().frobenius_norm()
        };
        assert!(norm(0.01) > norm(1.0));
        assert!(norm(1.0) > norm(100.0));
    }

    #[test]
    fn incremental_refit_matches_cold_fit() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        // initial model on 4 of the 6 samples per class
        let head: Vec<usize> = (0..y.len()).filter(|i| i % 6 < 4).collect();
        let yh: Vec<usize> = head.iter().map(|&i| y[i]).collect();
        let prev = Srda::new(SrdaConfig::lsqr_default())
            .fit_sparse(&xs.select_rows(&head), &yh)
            .unwrap();
        // refit on everything, warm-started
        let srda = Srda::new(SrdaConfig::default());
        let warm = srda
            .fit_sparse_incremental(&xs, &y, &prev, 500, 1e-10)
            .unwrap();
        let cold = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 500,
                tol: 1e-10,
            },
            ..SrdaConfig::default()
        })
        .fit_sparse(&xs, &y)
        .unwrap();
        let w1 = warm.embedding().weights();
        let w2 = cold.embedding().weights();
        assert!(
            w1.approx_eq(w2, 1e-5 * w2.max_abs().max(1.0)),
            "max diff {}",
            w1.sub(w2).unwrap().max_abs()
        );
    }

    #[test]
    fn incremental_refit_saves_iterations_on_small_updates() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        // model on all but the last sample per class
        let head: Vec<usize> = (0..y.len()).filter(|i| i % 6 != 5).collect();
        let yh: Vec<usize> = head.iter().map(|&i| y[i]).collect();
        let prev = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 400,
                tol: 1e-10,
            },
            ..SrdaConfig::default()
        })
        .fit_sparse(&xs.select_rows(&head), &yh)
        .unwrap();
        let srda = Srda::new(SrdaConfig::default());
        let warm = srda
            .fit_sparse_incremental(&xs, &y, &prev, 400, 1e-8)
            .unwrap();
        let cold = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 400,
                tol: 1e-8,
            },
            ..SrdaConfig::default()
        })
        .fit_sparse(&xs, &y)
        .unwrap();
        assert!(
            warm.lsqr_iterations() <= cold.lsqr_iterations(),
            "warm {} vs cold {}",
            warm.lsqr_iterations(),
            cold.lsqr_iterations()
        );
    }

    #[test]
    fn incremental_refit_validates_compatibility() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        let prev = Srda::new(SrdaConfig::lsqr_default())
            .fit_sparse(&xs, &y)
            .unwrap();
        let srda = Srda::new(SrdaConfig::default());
        // wrong feature count
        let bad = CsrMatrix::zeros(6, 2);
        assert!(srda
            .fit_sparse_incremental(&bad, &[0, 0, 1, 1, 2, 2], &prev, 10, 0.0)
            .is_err());
        // changed class count
        let y2: Vec<usize> = y.iter().map(|&k| k.min(1)).collect();
        assert!(srda
            .fit_sparse_incremental(&xs, &y2, &prev, 10, 0.0)
            .is_err());
    }

    #[test]
    fn fit_operator_matches_fit_sparse() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        let cfg = SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 80,
                tol: 0.0,
            },
            ..SrdaConfig::default()
        };
        let direct = Srda::new(cfg.clone()).fit_sparse(&xs, &y).unwrap();
        let via_op = Srda::new(cfg).fit_operator(&xs, &y).unwrap();
        assert!(direct
            .embedding()
            .weights()
            .approx_eq(via_op.embedding().weights(), 0.0));
    }

    #[test]
    fn fit_operator_rejects_direct_solver() {
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        assert!(Srda::new(SrdaConfig::default())
            .fit_operator(&xs, &y)
            .is_err());
    }

    #[test]
    fn out_of_core_fit_through_disk_operator() {
        // the paper's "reasonable disk I/O" claim, end to end
        let (x, y) = three_blobs();
        let xs = CsrMatrix::from_dense(&x, 0.0);
        let dir = std::env::temp_dir().join("srda_out_of_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.srdacsr");
        srda_sparse::disk::write_csr(&path, &xs).unwrap();
        let disk = srda_sparse::DiskCsr::open(&path).unwrap();

        let cfg = SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 80,
                tol: 0.0,
            },
            ..SrdaConfig::default()
        };
        let from_disk = Srda::new(cfg.clone()).fit_operator(&disk, &y).unwrap();
        let in_memory = Srda::new(cfg).fit_sparse(&xs, &y).unwrap();
        assert!(from_disk
            .embedding()
            .weights()
            .approx_eq(in_memory.embedding().weights(), 1e-12));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_responses_match_sequential() {
        let (x, y) = three_blobs();
        let seq = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 50,
                tol: 0.0,
            },
            parallel_responses: false,
            ..SrdaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        let par = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 50,
                tol: 0.0,
            },
            parallel_responses: true,
            ..SrdaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        // bitwise identical: same algorithm, same inputs, different threads
        assert!(seq
            .embedding()
            .weights()
            .approx_eq(par.embedding().weights(), 0.0));
        assert_eq!(seq.lsqr_iterations(), par.lsqr_iterations());
    }

    #[test]
    fn paper_config_constructors() {
        let c = SrdaConfig::lsqr_default();
        assert_eq!(c.alpha, 1.0);
        assert!(matches!(c.solver, SrdaSolver::Lsqr { max_iter: 15, .. }));
    }

    #[test]
    fn clean_fits_report_clean() {
        let (x, y) = three_blobs();
        let direct = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        let rep = direct.fit_report();
        assert!(rep.clean());
        assert_eq!(rep.responses.len(), 2);
        assert!(rep.responses.iter().all(|s| *s == ResponseSolver::Direct));
        assert!(rep.condition_estimate.unwrap() >= 1.0);

        let iterative = Srda::new(SrdaConfig::lsqr_default())
            .fit_dense(&x, &y)
            .unwrap();
        let rep = iterative.fit_report();
        assert!(rep.clean());
        assert!(rep.condition_estimate.is_none());
        assert!(rep
            .responses
            .iter()
            .all(|s| matches!(s, ResponseSolver::Lsqr { iterations, .. } if *iterations > 0)));
    }

    #[test]
    fn rank_deficient_dense_fit_recovers_with_warning() {
        // an all-zero feature with α = 0 makes the augmented Gram matrix
        // singular — this fit used to return Err(NotPositiveDefinite);
        // the fallback chain must now produce a usable model plus a
        // recorded warning
        let (x, y) = blobs();
        let x_bad = x.hcat(&Mat::zeros(8, 1)).unwrap();
        let cfg = SrdaConfig {
            alpha: 0.0,
            ..SrdaConfig::default()
        };
        let model = Srda::new(cfg).fit_dense(&x_bad, &y).unwrap();
        let rep = model.fit_report();
        assert!(!rep.clean());
        assert!(!rep.warnings.is_empty());
        assert!(!rep.recoveries.is_empty());
        assert!(rep.responses.iter().all(|s| *s != ResponseSolver::Direct));
        let w = model.embedding().weights();
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
        // the recovered model still separates the classes
        let z = model.embedding().transform_dense(&x_bad).unwrap();
        let (within, between) = class_compactness(&z, &y);
        assert!(
            between > 10.0 * within,
            "within {within}, between {between}"
        );
    }

    #[test]
    fn fit_rejects_non_finite_labels_data() {
        // a NaN row in the data must surface as an error from the LSQR
        // path, never as a NaN-filled model
        let (mut x, y) = blobs();
        x[(3, 1)] = f64::NAN;
        let err = Srda::new(SrdaConfig::lsqr_default()).fit_dense(&x, &y);
        assert!(matches!(err, Err(SrdaError::Linalg(_))), "{err:?}");
    }

    // ---- run governor / checkpoint / resume -------------------------

    use srda_solvers::{CancelToken, RunBudget};

    /// Fresh scratch directory for a checkpoint test.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srda-gov-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bits(m: &Mat) -> Vec<u64> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn governed_lsqr_interrupt_then_resume_is_bitwise_identical() {
        let (x, y) = three_blobs(); // 3 classes → 2 responses × 15 iters
        let baseline = Srda::new(SrdaConfig::lsqr_default())
            .fit_dense(&x, &y)
            .unwrap();

        let dir = scratch("mid");
        // interrupt mid-way through the FIRST response
        let cfg = SrdaConfig {
            governor: Some(RunGovernor::with_budget(RunBudget::with_iter_cap(7))),
            checkpoint: Some(CheckpointPolicy {
                dir: dir.clone(),
                every: 0,
            }),
            ..SrdaConfig::lsqr_default()
        };
        let outcome = Srda::new(cfg).fit_dense_outcome(&x, &y).unwrap();
        let interrupted = match outcome {
            FitOutcome::Interrupted(i) => i,
            FitOutcome::Complete(_) => panic!("iter cap 7 must interrupt a 30-iteration fit"),
        };
        assert_eq!(interrupted.reason, Interrupt::IterBudgetExhausted);
        assert_eq!(interrupted.responses_completed, 0);
        assert_eq!(interrupted.total_responses, 2);
        assert!(interrupted.report.interrupt.is_some());
        let ckpt = interrupted.checkpoint.expect("checkpoint must be written");
        assert!(ckpt.exists());

        // resume with the SAME data/config → bitwise-identical model
        let resumed = Srda::new(SrdaConfig {
            resume_from: Some(ckpt.clone()),
            ..SrdaConfig::lsqr_default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        assert_eq!(
            bits(baseline.embedding().weights()),
            bits(resumed.embedding().weights()),
            "resumed trajectory must match the uninterrupted one bit for bit"
        );
        assert_eq!(baseline.embedding().bias(), resumed.embedding().bias());
        assert_eq!(baseline.lsqr_iterations(), resumed.lsqr_iterations());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupt_between_responses_resumes_bitwise() {
        let (x, y) = three_blobs();
        let baseline = Srda::new(SrdaConfig::lsqr_default())
            .fit_dense(&x, &y)
            .unwrap();

        // tol = 0 → the first response consumes exactly 15 iterations, so
        // a cap of 15 fires at the very first tick of response 2
        let dir = scratch("between");
        let cfg = SrdaConfig {
            governor: Some(RunGovernor::with_budget(RunBudget::with_iter_cap(15))),
            checkpoint: Some(CheckpointPolicy {
                dir: dir.clone(),
                every: 0,
            }),
            ..SrdaConfig::lsqr_default()
        };
        let outcome = Srda::new(cfg).fit_dense_outcome(&x, &y).unwrap();
        let interrupted = match outcome {
            FitOutcome::Interrupted(i) => i,
            FitOutcome::Complete(_) => panic!("cap 15 must stop before response 2"),
        };
        assert_eq!(interrupted.responses_completed, 1);
        let ckpt = interrupted.checkpoint.unwrap();

        let resumed = Srda::new(SrdaConfig {
            resume_from: Some(ckpt),
            ..SrdaConfig::lsqr_default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        assert_eq!(
            bits(baseline.embedding().weights()),
            bits(resumed.embedding().weights())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_checkpoints_are_removed_after_a_completed_fit() {
        let (x, y) = three_blobs();
        let dir = scratch("cleanup");
        let cfg = SrdaConfig {
            checkpoint: Some(CheckpointPolicy {
                dir: dir.clone(),
                every: 3,
            }),
            ..SrdaConfig::lsqr_default()
        };
        let model = Srda::new(cfg).fit_dense(&x, &y).unwrap();
        assert!(model.fit_report().interrupt.is_none());
        assert!(
            !dir.join(FIT_CHECKPOINT_FILE).exists(),
            "a completed fit must not leave a stale checkpoint behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_against_different_data_is_a_typed_checkpoint_error() {
        let (x, y) = three_blobs();
        let dir = scratch("mismatch");
        let cfg = SrdaConfig {
            governor: Some(RunGovernor::with_budget(RunBudget::with_iter_cap(5))),
            checkpoint: Some(CheckpointPolicy {
                dir: dir.clone(),
                every: 0,
            }),
            ..SrdaConfig::lsqr_default()
        };
        let outcome = Srda::new(cfg).fit_dense_outcome(&x, &y).unwrap();
        let ckpt = match outcome {
            FitOutcome::Interrupted(i) => i.checkpoint.unwrap(),
            FitOutcome::Complete(_) => panic!("must interrupt"),
        };

        // different data (blobs: 2 classes, 3 features) → fingerprint mismatch
        let (x2, y2) = blobs();
        let err = Srda::new(SrdaConfig {
            resume_from: Some(ckpt.clone()),
            ..SrdaConfig::lsqr_default()
        })
        .fit_dense(&x2, &y2);
        assert!(matches!(err, Err(SrdaError::Checkpoint(_))), "{err:?}");

        // same data, different alpha → also a mismatch
        let err = Srda::new(SrdaConfig {
            alpha: 2.0,
            resume_from: Some(ckpt),
            ..SrdaConfig::lsqr_default()
        })
        .fit_dense(&x, &y);
        assert!(matches!(err, Err(SrdaError::Checkpoint(_))), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn normal_equations_fit_honors_the_governor() {
        let (x, y) = blobs();
        let exhausted = RunGovernor::with_budget(RunBudget::with_iter_cap(0));
        let cfg = SrdaConfig {
            governor: Some(exhausted.clone()),
            ..SrdaConfig::default()
        };
        match Srda::new(cfg.clone()).fit_dense_outcome(&x, &y).unwrap() {
            FitOutcome::Interrupted(i) => {
                assert_eq!(i.reason, Interrupt::IterBudgetExhausted);
                assert!(i.checkpoint.is_none());
            }
            FitOutcome::Complete(_) => panic!("zero budget must interrupt a direct fit"),
        }
        // the plain entry point surfaces the same state as a typed error
        let err = Srda::new(cfg).fit_dense(&x, &y);
        assert!(matches!(err, Err(SrdaError::Interrupted { .. })), "{err:?}");

        // sparse direct path too
        let xs = CsrMatrix::from_dense(&x, 0.0);
        let cfg = SrdaConfig {
            governor: Some(RunGovernor::with_budget(RunBudget::with_iter_cap(0))),
            ..SrdaConfig::default()
        };
        let err = Srda::new(cfg).fit_sparse(&xs, &y);
        assert!(matches!(err, Err(SrdaError::Interrupted { .. })), "{err:?}");
    }

    #[test]
    fn cancellation_stops_a_governed_fit() {
        let (x, y) = three_blobs();
        let token = CancelToken::new();
        let governor = RunGovernor::new(RunBudget::unbounded(), token.clone());
        token.cancel();
        let cfg = SrdaConfig {
            governor: Some(governor),
            ..SrdaConfig::lsqr_default()
        };
        match Srda::new(cfg).fit_dense_outcome(&x, &y).unwrap() {
            FitOutcome::Interrupted(i) => assert_eq!(i.reason, Interrupt::Cancelled),
            FitOutcome::Complete(_) => panic!("cancelled token must interrupt"),
        }
    }

    #[test]
    fn parallel_responses_with_governor_interrupt_without_checkpoint() {
        let (x, y) = three_blobs();
        let cfg = SrdaConfig {
            parallel_responses: true,
            governor: Some(RunGovernor::with_budget(RunBudget::with_iter_cap(3))),
            ..SrdaConfig::lsqr_default()
        };
        match Srda::new(cfg).fit_dense_outcome(&x, &y).unwrap() {
            FitOutcome::Interrupted(i) => {
                assert_eq!(i.reason, Interrupt::IterBudgetExhausted);
                assert!(
                    i.checkpoint.is_none(),
                    "parallel interrupts don't checkpoint"
                );
            }
            FitOutcome::Complete(_) => panic!("3 shared iterations cannot finish 2×15"),
        }
    }

    #[test]
    fn checkpoint_policy_with_direct_solver_warns_and_completes() {
        let (x, y) = blobs();
        let dir = scratch("direct");
        let cfg = SrdaConfig {
            checkpoint: Some(CheckpointPolicy {
                dir: dir.clone(),
                every: 1,
            }),
            ..SrdaConfig::default()
        };
        let model = Srda::new(cfg).fit_dense(&x, &y).unwrap();
        assert!(model
            .fit_report()
            .warnings
            .iter()
            .any(|w| w.contains("checkpointing")));
        assert!(!dir.join(FIT_CHECKPOINT_FILE).exists());
        // resume is an LSQR-only feature: asking a direct fit to resume
        // is a configuration error, not a silent cold start
        let err = Srda::new(SrdaConfig {
            resume_from: Some(dir.join(FIT_CHECKPOINT_FILE)),
            ..SrdaConfig::default()
        })
        .fit_dense(&x, &y);
        assert!(matches!(err, Err(SrdaError::Checkpoint(_))), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn governed_fit_that_finishes_matches_ungoverned_bitwise() {
        let (x, y) = three_blobs();
        let plain = Srda::new(SrdaConfig::lsqr_default())
            .fit_dense(&x, &y)
            .unwrap();
        let governed = Srda::new(SrdaConfig {
            governor: Some(RunGovernor::with_budget(RunBudget::with_iter_cap(10_000))),
            ..SrdaConfig::lsqr_default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        assert_eq!(
            bits(plain.embedding().weights()),
            bits(governed.embedding().weights()),
            "governance must only observe, never perturb the trajectory"
        );
    }
}
