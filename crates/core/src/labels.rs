//! Class-label bookkeeping shared by every algorithm in the crate.

use crate::{Result, SrdaError};

/// Validated class structure of a labeled training set.
///
/// Labels are `0..n_classes` with every class non-empty — the structure the
/// paper's `W` matrix (Eqn 6) encodes. Built once per fit and shared by the
/// response generator, the scatter computations, and the evaluators.
#[derive(Debug, Clone)]
pub struct ClassIndex {
    n_samples: usize,
    counts: Vec<usize>,
    /// Row indices of each class, in ascending order.
    members: Vec<Vec<usize>>,
}

impl ClassIndex {
    /// Validate `labels` and build the index. `labels[i]` is the class of
    /// sample `i`; classes must be `0..c` for some `c ≥ 2` with no class
    /// empty.
    pub fn new(labels: &[usize]) -> Result<Self> {
        if labels.is_empty() {
            return Err(SrdaError::InvalidLabels {
                context: "no samples".into(),
            });
        }
        let c = labels.iter().max().unwrap() + 1;
        if c < 2 {
            return Err(SrdaError::InvalidLabels {
                context: "need at least 2 classes".into(),
            });
        }
        let mut members = vec![Vec::new(); c];
        for (i, &k) in labels.iter().enumerate() {
            members[k].push(i);
        }
        let counts: Vec<usize> = members.iter().map(|v| v.len()).collect();
        if let Some(empty) = counts.iter().position(|&n| n == 0) {
            return Err(SrdaError::InvalidLabels {
                context: format!("class {empty} has no samples"),
            });
        }
        Ok(ClassIndex {
            n_samples: labels.len(),
            counts,
            members,
        })
    }

    /// Number of classes `c`.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Number of samples `m`.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Per-class sample counts `m_k`.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Row indices belonging to class `k` (ascending).
    pub fn members(&self, k: usize) -> &[usize] {
        &self.members[k]
    }

    /// The class-indicator vector of class `k` (the columns the paper's
    /// Eqn 15 Gram-Schmidt step starts from).
    pub fn indicator(&self, k: usize) -> Vec<f64> {
        let mut v = vec![0.0; self.n_samples];
        for &i in &self.members[k] {
            v[i] = 1.0;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_index() {
        let ci = ClassIndex::new(&[0, 1, 0, 2, 1, 0]).unwrap();
        assert_eq!(ci.n_classes(), 3);
        assert_eq!(ci.n_samples(), 6);
        assert_eq!(ci.counts(), &[3, 2, 1]);
        assert_eq!(ci.members(0), &[0, 2, 5]);
        assert_eq!(ci.members(2), &[3]);
    }

    #[test]
    fn indicator_vectors() {
        let ci = ClassIndex::new(&[0, 1, 1]).unwrap();
        assert_eq!(ci.indicator(0), vec![1.0, 0.0, 0.0]);
        assert_eq!(ci.indicator(1), vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn rejects_empty() {
        assert!(ClassIndex::new(&[]).is_err());
    }

    #[test]
    fn rejects_single_class() {
        assert!(ClassIndex::new(&[0, 0, 0]).is_err());
    }

    #[test]
    fn rejects_gap_in_labels() {
        // class 1 missing
        let err = ClassIndex::new(&[0, 2, 0, 2]).unwrap_err();
        match err {
            SrdaError::InvalidLabels { context } => assert!(context.contains("class 1")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn indicators_partition_ones() {
        let ci = ClassIndex::new(&[0, 1, 2, 1, 0]).unwrap();
        let mut total = vec![0.0; 5];
        for k in 0..3 {
            for (t, v) in total.iter_mut().zip(ci.indicator(k)) {
                *t += v;
            }
        }
        assert_eq!(total, vec![1.0; 5]);
    }
}
