//! IDR/QR — the QR-decomposition baseline of Ye, Li, Xiong, Park,
//! Janardan, Kumar (KDD 2004), the fourth algorithm in the paper's §IV.B.
//!
//! The idea: instead of eigendecomposing full scatter matrices, first
//! project onto the (at most `c`-dimensional) span of the class centroids
//! via a thin QR decomposition, then solve the regularized discriminant
//! problem `(S_w + λI)⁻¹ S_b` *inside that tiny subspace*. Training is
//! dominated by the `n × c` QR — dramatically cheaper than LDA — but, as
//! the paper stresses, "there is no theoretical relation between the
//! optimization problem solved by IDR/QR and that of LDA", and its accuracy
//! trails RLDA/SRDA in all four of the paper's benchmarks. It still needs
//! the dense centered data to form the reduced scatters, so it hits the
//! same memory wall on large sparse corpora (Table X's missing entries).

use crate::labels::ClassIndex;
use crate::model::Embedding;
use crate::{Result, SrdaError};
use srda_linalg::ops::{matmul, matvec_t};
use srda_linalg::stats::{centered, class_means};
use srda_linalg::triangular;
use srda_linalg::{Cholesky, Mat, Qr, SymmetricEigen};

/// Configuration for [`IdrQr`].
#[derive(Debug, Clone)]
pub struct IdrQrConfig {
    /// Regularizer `λ` added to the reduced within-class scatter. The
    /// original paper fixes a small constant; we default to 1.0 to match
    /// the regularization scale used for RLDA/SRDA in the comparison.
    pub lambda: f64,
    /// Relative eigenvalue cut for the reduced problem.
    pub eig_tol: f64,
    /// Optional memory budget in bytes (IDR/QR "still needs to store the
    /// centered data matrix", per the paper).
    pub memory_budget_bytes: Option<usize>,
}

impl Default for IdrQrConfig {
    fn default() -> Self {
        IdrQrConfig {
            lambda: 1.0,
            eig_tol: 1e-9,
            memory_budget_bytes: None,
        }
    }
}

/// The IDR/QR estimator.
#[derive(Debug, Clone, Default)]
pub struct IdrQr {
    config: IdrQrConfig,
}

impl IdrQr {
    /// Create an estimator with the given configuration.
    pub fn new(config: IdrQrConfig) -> Self {
        IdrQr { config }
    }

    /// Fit on dense data (samples as rows).
    pub fn fit_dense(&self, x: &Mat, y: &[usize]) -> Result<Embedding> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "idr_qr fit_dense",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let index = ClassIndex::new(y)?;
        let (m, n) = x.shape();
        let c = index.n_classes();
        if n < c {
            return Err(SrdaError::InvalidLabels {
                context: format!("IDR/QR requires n_features ≥ n_classes ({n} < {c})"),
            });
        }

        if let Some(budget) = self.config.memory_budget_bytes {
            // the centered data matrix is the dominant allocation
            let needed = m * n * 8;
            if needed > budget {
                return Err(SrdaError::MemoryBudgetExceeded {
                    needed_bytes: needed,
                    budget_bytes: budget,
                    context: "IDR/QR centered data matrix",
                });
            }
        }

        // Stage 1: thin QR of the centroid matrix (n × c, centroids as
        // columns) — the span that approximates the discriminant subspace.
        let (centroids, counts) = class_means(x, y, c)?;
        let qr = Qr::factor(&centroids.transpose())?;
        let q = qr.q_thin(); // n × c, orthonormal columns

        // Stage 2: reduced scatters inside the Q basis.
        let (xc, mu) = centered(x);
        let z = matmul(&xc, &q)?; // m × c
        let st_r = srda_linalg::ops::gram(&z); // Qᵀ S_t Q

        let mut sb_r = Mat::zeros(c, c);
        for k in 0..c {
            let mut d = centroids.row(k).to_vec();
            for (di, &mi) in d.iter_mut().zip(&mu) {
                *di -= mi;
            }
            let v = matvec_t(&q, &d)?; // Qᵀ(μ_k − μ), length c
            let mk = counts[k] as f64;
            for i in 0..c {
                for j in 0..c {
                    sb_r[(i, j)] += mk * v[i] * v[j];
                }
            }
        }
        let sw_r = st_r.sub(&sb_r)?; // S_w = S_t − S_b

        // Stage 3: the small regularized eigenproblem
        // (S_w + λI)⁻¹ S_b v = λ v, symmetrized through the Cholesky factor
        // L of S_w + λI: eig of L⁻¹ S_b L⁻ᵀ.
        let mut sw_shift = sw_r;
        sw_shift.symmetrize();
        sw_shift.add_to_diag(self.config.lambda);
        let chol = Cholesky::factor(&sw_shift)?;
        let l = chol.l();

        // C = L⁻¹ S_b L⁻ᵀ
        let mut t = Mat::zeros(c, c); // L⁻¹ S_b
        for j in 0..c {
            let mut col = sb_r.col(j);
            triangular::solve_lower_inplace(l, &mut col)?;
            t.set_col(j, &col);
        }
        let mut cmat = Mat::zeros(c, c); // T L⁻ᵀ = (L⁻¹ Tᵀ)ᵀ
        let tt = t.transpose();
        for j in 0..c {
            let mut col = tt.col(j);
            triangular::solve_lower_inplace(l, &mut col)?;
            cmat.set_col(j, &col);
        }
        cmat = cmat.transpose();
        cmat.symmetrize();

        let eig = SymmetricEigen::factor(&cmat)?;
        let lmax = eig.values.first().copied().unwrap_or(0.0).max(0.0);
        let keep: Vec<usize> = eig
            .values
            .iter()
            .enumerate()
            .take(c - 1) // at most c − 1 discriminant directions
            .filter(|(_, &lv)| lv > self.config.eig_tol * lmax && lv > 0.0)
            .map(|(i, _)| i)
            .collect();
        let p = eig.vectors.select_cols(&keep);

        // undo the symmetrization: v = L⁻ᵀ p, then map back through Q
        let mut v = Mat::zeros(c, keep.len());
        for j in 0..keep.len() {
            let mut col = p.col(j);
            triangular::solve_lower_transpose_inplace(l, &mut col)?;
            v.set_col(j, &col);
        }
        let weights = matmul(&q, &v)?;
        let bias: Vec<f64> = matvec_t(&weights, &mu)?.iter().map(|x2| -x2).collect();
        Embedding::new(weights, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(m_per: usize, n: usize, sep: f64) -> (Mat, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for k in 0..3usize {
            for s in 0..m_per {
                let noise = |d: usize| {
                    let h = ((k * 41 + s * 17 + d * 5) as f64 * 12.9898).sin() * 43758.5453;
                    (h - h.floor() - 0.5) * 0.4
                };
                rows.push(
                    (0..n)
                        .map(|d| if d % 3 == k { sep } else { 0.0 } + noise(d))
                        .collect::<Vec<_>>(),
                );
                y.push(k);
            }
        }
        (Mat::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn produces_at_most_c_minus_1_components() {
        let (x, y) = blobs(8, 6, 5.0);
        let emb = IdrQr::default().fit_dense(&x, &y).unwrap();
        assert_eq!(emb.n_components(), 2);
        assert_eq!(emb.n_features(), 6);
    }

    #[test]
    fn separates_classes() {
        let (x, y) = blobs(8, 9, 6.0);
        let emb = IdrQr::default().fit_dense(&x, &y).unwrap();
        let z = emb.transform_dense(&x).unwrap();
        let (cent, _) = srda_linalg::stats::class_means(&z, &y, 3).unwrap();
        let mut within = 0.0;
        for (i, &k) in y.iter().enumerate() {
            within += srda_linalg::vector::dist2_sq(z.row(i), cent.row(k)).sqrt();
        }
        within /= y.len() as f64;
        let between = srda_linalg::vector::dist2_sq(cent.row(0), cent.row(1)).sqrt();
        assert!(between > 2.0 * within, "within {within} between {between}");
    }

    #[test]
    fn weights_live_in_centroid_span() {
        // by construction W = Q·V, so every weight column must lie in the
        // span of the (uncentered) class centroids
        let (x, y) = blobs(6, 8, 4.0);
        let emb = IdrQr::default().fit_dense(&x, &y).unwrap();
        let (centroids, _) = class_means(&x, &y, 3).unwrap();
        // orthonormal basis of the centroid span
        let cols: Vec<Vec<f64>> = (0..3).map(|k| centroids.row(k).to_vec()).collect();
        let basis = srda_linalg::gram_schmidt::orthonormalize(&cols, 1e-10);
        for j in 0..emb.n_components() {
            let mut w = emb.weights().col(j);
            srda_linalg::vector::normalize(&mut w);
            let proj_sq: f64 = basis
                .iter()
                .map(|b| srda_linalg::vector::dot(b, &w).powi(2))
                .sum();
            assert!(
                proj_sq > 1.0 - 1e-8,
                "column {j} leaves the span: {proj_sq}"
            );
        }
    }

    #[test]
    fn fewer_features_than_classes_rejected() {
        let x = Mat::from_fn(6, 2, |i, j| (i + j) as f64);
        let y = vec![0, 1, 2, 0, 1, 2];
        assert!(IdrQr::default().fit_dense(&x, &y).is_err());
    }

    #[test]
    fn memory_budget_guard() {
        let (x, y) = blobs(6, 8, 4.0);
        let cfg = IdrQrConfig {
            memory_budget_bytes: Some(64),
            ..IdrQrConfig::default()
        };
        assert!(matches!(
            IdrQr::new(cfg).fit_dense(&x, &y),
            Err(SrdaError::MemoryBudgetExceeded { .. })
        ));
    }

    #[test]
    fn small_sample_high_dimension_works() {
        let (x, y) = blobs(2, 50, 4.0); // 6 samples, 50-D
        let emb = IdrQr::default().fit_dense(&x, &y).unwrap();
        assert!(emb.weights().is_finite());
        assert!(emb.n_components() >= 1);
    }

    #[test]
    fn label_mismatch_rejected() {
        let (x, _) = blobs(4, 6, 4.0);
        assert!(IdrQr::default().fit_dense(&x, &[0, 1, 2]).is_err());
    }
}
