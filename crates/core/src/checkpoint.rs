//! Fit-level checkpoint: resume an interrupted multi-response SRDA fit.
//!
//! The solver-level [`LsqrCheckpoint`] captures one response solve; an
//! SRDA fit is `c − 1` of them in sequence. A [`FitCheckpoint`] records
//! the fully-solved response columns (weights, iteration counts, stop
//! reasons, accumulated warnings) plus the in-flight solver state of the
//! response that was interrupted mid-solve, so `Srda` can resume and
//! produce a **bitwise-identical** model to the uninterrupted run.
//!
//! The file format mirrors `srda-solvers`' checkpoint format: a magic
//! header (`SRDAFCK1`), a little-endian payload, and a CRC-32 trailer,
//! written via atomic rename so a crash mid-write never leaves a torn
//! checkpoint behind. The fingerprint binds the state to the exact
//! problem — data shape, response count, `α`, iteration cap, tolerance,
//! and a CRC of the labels — and also lets the CLI `resume` subcommand
//! reconstruct the training configuration without re-specifying it.

use srda_solvers::checkpoint::{CheckpointError, LsqrCheckpoint};
use srda_solvers::StopReason;
use srda_sparse::crc32::crc32;
use std::io::Write;
use std::path::Path;

/// Magic bytes opening every fit-checkpoint file (version 1).
pub const FIT_CHECKPOINT_MAGIC: &[u8; 8] = b"SRDAFCK1";

/// File name a fit writes inside its configured checkpoint directory.
pub const FIT_CHECKPOINT_FILE: &str = "srda-fit.ckpt";

/// Identity of the fit a checkpoint belongs to. Resuming against data or
/// a configuration that differs in any field is refused — silently mixing
/// trajectories from two different problems would corrupt the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitFingerprint {
    /// Training samples `m`.
    pub nrows: u64,
    /// Raw feature count `n` (before bias augmentation).
    pub ncols: u64,
    /// Response columns `c − 1`.
    pub n_responses: u64,
    /// Bit pattern of the ridge parameter `α`.
    pub alpha_bits: u64,
    /// Per-response LSQR iteration cap.
    pub max_iter: u64,
    /// Bit pattern of the LSQR stopping tolerance.
    pub tol_bits: u64,
    /// CRC-32 over the label vector (little-endian `u64`s).
    pub labels_crc: u32,
}

impl FitFingerprint {
    /// Fingerprint the fit of `m × n` data with labels `y` under the
    /// given LSQR configuration.
    pub fn new(
        nrows: usize,
        ncols: usize,
        n_responses: usize,
        alpha: f64,
        max_iter: usize,
        tol: f64,
        y: &[usize],
    ) -> Self {
        let mut label_bytes = Vec::with_capacity(y.len() * 8);
        for &label in y {
            label_bytes.extend_from_slice(&(label as u64).to_le_bytes());
        }
        FitFingerprint {
            nrows: nrows as u64,
            ncols: ncols as u64,
            n_responses: n_responses as u64,
            alpha_bits: alpha.to_bits(),
            max_iter: max_iter as u64,
            tol_bits: tol.to_bits(),
            labels_crc: crc32(&label_bytes),
        }
    }

    /// The ridge parameter the checkpointed fit was configured with.
    pub fn alpha(&self) -> f64 {
        f64::from_bits(self.alpha_bits)
    }

    /// The stopping tolerance the checkpointed fit was configured with.
    pub fn tol(&self) -> f64 {
        f64::from_bits(self.tol_bits)
    }

    /// Verify this (persisted) fingerprint matches the current problem.
    pub fn ensure_matches(&self, current: &FitFingerprint) -> Result<(), CheckpointError> {
        if self == current {
            return Ok(());
        }
        let what = if (self.nrows, self.ncols) != (current.nrows, current.ncols) {
            format!(
                "data shape changed: checkpoint {}x{}, current {}x{}",
                self.nrows, self.ncols, current.nrows, current.ncols
            )
        } else if self.labels_crc != current.labels_crc {
            "label vector changed since the checkpoint was written".to_string()
        } else if self.n_responses != current.n_responses {
            format!(
                "response count changed: checkpoint {}, current {}",
                self.n_responses, current.n_responses
            )
        } else {
            format!(
                "fit configuration changed: checkpoint (alpha {}, max_iter {}, tol {}), \
                 current (alpha {}, max_iter {}, tol {})",
                self.alpha(),
                self.max_iter,
                self.tol(),
                current.alpha(),
                current.max_iter,
                current.tol()
            )
        };
        Err(CheckpointError::Mismatch(what))
    }
}

/// One response column that was fully solved before the interrupt.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedResponse {
    /// The solved augmented weight column (length `n + 1`).
    pub x: Vec<f64>,
    /// Iterations the solve consumed.
    pub iterations: usize,
    /// Why it stopped (never `Interrupted` — those go in `in_flight`).
    pub stop: StopReason,
}

/// The resumable state of an interrupted SRDA fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FitCheckpoint {
    /// Which fit this state belongs to.
    pub fingerprint: FitFingerprint,
    /// Fully-solved response columns, in order (responses `0..len`).
    pub completed: Vec<CompletedResponse>,
    /// Mid-solve state of response `completed.len()`, when the interrupt
    /// landed inside a solve rather than between two.
    pub in_flight: Option<LsqrCheckpoint>,
    /// Warnings accumulated before the interrupt, so the resumed fit's
    /// report matches the uninterrupted run's exactly.
    pub warnings: Vec<String>,
}

// ---------------------------------------------------------------------------
// binary encoding (same discipline as srda-solvers' checkpoint module:
// little-endian, length-prefixed, CRC-32 sealed, atomic-rename writes)
// ---------------------------------------------------------------------------

fn stop_code(stop: StopReason) -> u8 {
    match stop {
        StopReason::TrivialSolution => 0,
        StopReason::Converged => 1,
        StopReason::MaxIterations => 2,
        StopReason::Diverged => 3,
        StopReason::Stagnated => 4,
        // interrupted responses are not "completed"; their state lives in
        // `in_flight`. Encoding one would be a bug upstream.
        StopReason::Interrupted(_) => {
            unreachable!("interrupted responses must not be recorded as completed")
        }
    }
}

fn decode_stop(code: u8) -> Result<StopReason, CheckpointError> {
    Ok(match code {
        0 => StopReason::TrivialSolution,
        1 => StopReason::Converged,
        2 => StopReason::MaxIterations,
        3 => StopReason::Diverged,
        4 => StopReason::Stagnated,
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "unknown stop-reason code {other}"
            )))
        }
    })
}

struct Enc(Vec<u8>);

impl Enc {
    fn new() -> Self {
        Enc(Vec::with_capacity(256))
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn vec(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.0.extend_from_slice(b);
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
    /// Append the CRC of everything so far and return the buffer.
    fn seal(mut self) -> Vec<u8> {
        let crc = crc32(&self.0);
        self.u32(crc);
        self.0
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Corrupt("truncated checkpoint".into()));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn len(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let n = self.u64()? as usize;
        // any plausible length is bounded by the remaining payload
        if n.saturating_mul(1) > self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "implausible {what} length {n}"
            )));
        }
        Ok(n)
    }
    fn vec(&mut self, what: &str) -> Result<Vec<f64>, CheckpointError> {
        let n = self.len(what)?;
        if n.saturating_mul(8) > self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "implausible {what} length {n}"
            )));
        }
        (0..n).map(|_| self.f64()).collect()
    }
    fn bytes(&mut self, what: &str) -> Result<&'a [u8], CheckpointError> {
        let n = self.len(what)?;
        self.take(n)
    }
    fn str(&mut self, what: &str) -> Result<String, CheckpointError> {
        let b = self.bytes(what)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| CheckpointError::Corrupt(format!("{what} is not valid UTF-8")))
    }
    fn done(&self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl FitCheckpoint {
    /// Serialize to the sealed `SRDAFCK1` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.0.extend_from_slice(FIT_CHECKPOINT_MAGIC);
        let fp = &self.fingerprint;
        e.u64(fp.nrows);
        e.u64(fp.ncols);
        e.u64(fp.n_responses);
        e.u64(fp.alpha_bits);
        e.u64(fp.max_iter);
        e.u64(fp.tol_bits);
        e.u32(fp.labels_crc);
        e.u64(self.completed.len() as u64);
        for c in &self.completed {
            e.vec(&c.x);
            e.u64(c.iterations as u64);
            e.u8(stop_code(c.stop));
        }
        match &self.in_flight {
            Some(ckpt) => {
                e.u8(1);
                e.bytes(&ckpt.to_bytes());
            }
            None => e.u8(0),
        }
        e.u64(self.warnings.len() as u64);
        for w in &self.warnings {
            e.str(w);
        }
        e.seal()
    }

    /// Parse and CRC-verify the sealed byte format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < FIT_CHECKPOINT_MAGIC.len() + 4 {
            return Err(CheckpointError::Corrupt("file too short".into()));
        }
        if &bytes[..8] != FIT_CHECKPOINT_MAGIC {
            return Err(CheckpointError::Corrupt(
                "bad magic: not a fit-checkpoint file".into(),
            ));
        }
        let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let actual = crc32(payload);
        if stored != actual {
            return Err(CheckpointError::Corrupt(format!(
                "CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let mut d = Dec::new(&payload[8..]);
        let fingerprint = FitFingerprint {
            nrows: d.u64()?,
            ncols: d.u64()?,
            n_responses: d.u64()?,
            alpha_bits: d.u64()?,
            max_iter: d.u64()?,
            tol_bits: d.u64()?,
            labels_crc: u32::from_le_bytes(d.take(4)?.try_into().unwrap()),
        };
        let n_completed = d.len("completed-response count")?;
        let mut completed = Vec::with_capacity(n_completed.min(1024));
        for _ in 0..n_completed {
            let x = d.vec("response weights")?;
            let iterations = d.u64()? as usize;
            let stop = decode_stop(d.u8()?)?;
            completed.push(CompletedResponse {
                x,
                iterations,
                stop,
            });
        }
        let in_flight = match d.u8()? {
            0 => None,
            1 => Some(LsqrCheckpoint::from_bytes(d.bytes("in-flight state")?)?),
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "bad in-flight marker {other}"
                )))
            }
        };
        let n_warn = d.len("warning count")?;
        let mut warnings = Vec::with_capacity(n_warn.min(1024));
        for _ in 0..n_warn {
            warnings.push(d.str("warning")?);
        }
        d.done()?;
        Ok(FitCheckpoint {
            fingerprint,
            completed,
            in_flight,
            warnings,
        })
    }

    /// Write to `path` atomically: the bytes go to a same-directory temp
    /// file which is fsynced and renamed over the destination, so readers
    /// only ever observe a complete, CRC-valid checkpoint.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes();
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        let file_name = path
            .file_name()
            .ok_or_else(|| CheckpointError::Io("checkpoint path has no file name".into()))?;
        let tmp = dir.join(format!(
            ".{}.tmp-{}",
            file_name.to_string_lossy(),
            std::process::id()
        ));
        let write = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            return Err(CheckpointError::Io(format!(
                "writing {}: {e}",
                path.display()
            )));
        }
        Ok(())
    }

    /// Read and verify a checkpoint file.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("reading {}: {e}", path.display())))?;
        FitCheckpoint::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srda_solvers::checkpoint::ProblemFingerprint;

    fn sample() -> FitCheckpoint {
        let fp = FitFingerprint::new(20, 5, 2, 1.0, 30, 1e-8, &[0, 0, 1, 1, 2]);
        let solver_fp = ProblemFingerprint::new(20, 6, 1.0, 1e-8, 30, &[1.0, -2.0, 0.5]);
        FitCheckpoint {
            fingerprint: fp,
            completed: vec![CompletedResponse {
                x: vec![1.0, -0.0, 3.5e-12, f64::MAX, 2.0, -7.0],
                iterations: 17,
                stop: StopReason::Converged,
            }],
            in_flight: Some(LsqrCheckpoint {
                fingerprint: solver_fp,
                iteration: 9,
                x: vec![0.25; 6],
                w: vec![-1.5; 6],
                u: vec![0.125; 20],
                v: vec![2.0; 6],
                alpha: 0.75,
                phibar: -0.5,
                rhobar: 1.25,
                anorm_sq: 42.0,
                b_norm: 3.0,
                best_res: 0.01,
                no_improve: 2,
                residual_trace: vec![1.0, 0.5, 0.1],
            }),
            warnings: vec!["response 0: LSQR stagnated after 17 iterations".into()],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let c = sample();
        let back = FitCheckpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c, back);
        // -0.0 must survive with its sign bit
        assert_eq!(back.completed[0].x[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let c = FitCheckpoint {
            fingerprint: FitFingerprint::new(3, 2, 1, 0.5, 10, 0.0, &[0, 1, 1]),
            completed: vec![],
            in_flight: None,
            warnings: vec![],
        };
        assert_eq!(FitCheckpoint::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            FitCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
        let good = sample().to_bytes();
        assert!(FitCheckpoint::from_bytes(&good[..good.len() - 1]).is_err());
        assert!(FitCheckpoint::from_bytes(b"SRDACKP1nope").is_err());
    }

    #[test]
    fn fingerprint_mismatch_names_the_difference() {
        let a = FitFingerprint::new(20, 5, 2, 1.0, 30, 0.0, &[0, 1]);
        let shape = FitFingerprint::new(21, 5, 2, 1.0, 30, 0.0, &[0, 1]);
        let labels = FitFingerprint::new(20, 5, 2, 1.0, 30, 0.0, &[1, 0]);
        let config = FitFingerprint::new(20, 5, 2, 2.0, 30, 0.0, &[0, 1]);
        assert!(a.ensure_matches(&a).is_ok());
        let msg = |e: CheckpointError| e.to_string();
        assert!(msg(a.ensure_matches(&shape).unwrap_err()).contains("shape"));
        assert!(msg(a.ensure_matches(&labels).unwrap_err()).contains("label"));
        assert!(msg(a.ensure_matches(&config).unwrap_err()).contains("configuration"));
    }

    #[test]
    fn atomic_write_and_read() {
        let dir = std::env::temp_dir().join("srda_fit_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fit.ckpt");
        let c = sample();
        c.write_atomic(&path).unwrap();
        assert_eq!(FitCheckpoint::read(&path).unwrap(), c);
        // overwrite must also be atomic and leave no temp litter
        c.write_atomic(&path).unwrap();
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains("tmp")
            })
            .collect();
        assert!(litter.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_accessors_recover_floats() {
        let fp = FitFingerprint::new(8, 3, 1, 0.125, 50, 1e-10, &[0, 1]);
        assert_eq!(fp.alpha(), 0.125);
        assert_eq!(fp.tol(), 1e-10);
        assert_eq!(fp.max_iter, 50);
    }
}
