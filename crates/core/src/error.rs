//! Error type for discriminant-analysis training and transformation.

use std::fmt;

/// Errors produced when fitting or applying discriminant models.
#[derive(Debug, Clone, PartialEq)]
pub enum SrdaError {
    /// Labels are inconsistent with the data (wrong length, empty class,
    /// fewer than two classes, ...).
    InvalidLabels {
        /// Human-readable description.
        context: String,
    },
    /// Operand shapes are incompatible (e.g. transforming data whose
    /// feature count differs from the training data's).
    ShapeMismatch {
        /// Operation name.
        op: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        got: usize,
    },
    /// A required densification or allocation would exceed the configured
    /// memory budget. This mirrors the paper's Tables IX/X, where LDA,
    /// RLDA, and IDR/QR "can not be applied as the size of training set
    /// increases due to the memory limit".
    MemoryBudgetExceeded {
        /// Bytes the operation would need.
        needed_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
        /// What was being allocated.
        context: &'static str,
    },
    /// An underlying linear-algebra routine failed.
    Linalg(srda_linalg::LinalgError),
    /// An underlying sparse-matrix routine failed.
    Sparse(srda_sparse::SparseError),
    /// The fit's [`srda_solvers::RunGovernor`] stopped the run (deadline,
    /// iteration budget, or cooperative cancellation) before it finished.
    /// **Not a numerical failure**: when `checkpoint` is set the partial
    /// state was persisted and the fit can be resumed to a
    /// bitwise-identical trajectory. Callers that want the partial state
    /// in-process should use the `fit_*_outcome` entry points instead.
    Interrupted {
        /// Which budget fired.
        reason: srda_solvers::Interrupt,
        /// Response columns fully solved before the interrupt.
        responses_completed: usize,
        /// Where the resumable fit checkpoint was written, if anywhere.
        checkpoint: Option<std::path::PathBuf>,
    },
    /// A fit checkpoint could not be written, read, or applied (I/O
    /// failure, corruption, or a fingerprint mismatch between the
    /// checkpoint and the current data/configuration).
    Checkpoint(srda_solvers::CheckpointError),
    /// An input row handed to inference (`transform`/`predict`) contains
    /// NaN or ±Inf. Embeddings are affine maps, so a non-finite input can
    /// only produce a non-finite (garbage) output; it is rejected up
    /// front instead.
    NonFiniteInput {
        /// Operation name.
        op: &'static str,
        /// Index of the first offending row.
        row: usize,
    },
}

impl fmt::Display for SrdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrdaError::InvalidLabels { context } => write!(f, "invalid labels: {context}"),
            SrdaError::ShapeMismatch { op, expected, got } => {
                write!(f, "shape mismatch in {op}: expected {expected}, got {got}")
            }
            SrdaError::MemoryBudgetExceeded {
                needed_bytes,
                budget_bytes,
                context,
            } => write!(
                f,
                "memory budget exceeded in {context}: need {needed_bytes} bytes, budget {budget_bytes}"
            ),
            SrdaError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            SrdaError::Sparse(e) => write!(f, "sparse matrix error: {e}"),
            SrdaError::Interrupted {
                reason,
                responses_completed,
                checkpoint,
            } => {
                write!(f, "fit interrupted ({reason}) after {responses_completed} completed responses")?;
                match checkpoint {
                    Some(p) => write!(f, "; resumable checkpoint at {}", p.display()),
                    None => write!(f, "; no checkpoint written"),
                }
            }
            SrdaError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            SrdaError::NonFiniteInput { op, row } => {
                write!(f, "non-finite input to {op}: row {row} contains NaN or Inf")
            }
        }
    }
}

impl std::error::Error for SrdaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SrdaError::Linalg(e) => Some(e),
            SrdaError::Sparse(e) => Some(e),
            SrdaError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<srda_solvers::CheckpointError> for SrdaError {
    fn from(e: srda_solvers::CheckpointError) -> Self {
        SrdaError::Checkpoint(e)
    }
}

impl From<srda_linalg::LinalgError> for SrdaError {
    fn from(e: srda_linalg::LinalgError) -> Self {
        SrdaError::Linalg(e)
    }
}

impl From<srda_sparse::SparseError> for SrdaError {
    fn from(e: srda_sparse::SparseError) -> Self {
        SrdaError::Sparse(e)
    }
}

/// Probe a fit's optional governor at a coarse stage boundary, turning a
/// fired budget into [`SrdaError::Interrupted`]. Used by the eigen-based
/// fits (LDA/RLDA/kernel/spectral regression), whose stages are not
/// resumable — `checkpoint` is always `None` for them.
pub(crate) fn check_governor(
    governor: Option<&srda_solvers::RunGovernor>,
) -> Result<(), SrdaError> {
    if let Some(gov) = governor {
        if let Some(reason) = gov.probe() {
            return Err(SrdaError::Interrupted {
                reason,
                responses_completed: 0,
                checkpoint: None,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SrdaError::InvalidLabels {
            context: "class 3 is empty".into(),
        };
        assert!(e.to_string().contains("class 3"));
        let m = SrdaError::MemoryBudgetExceeded {
            needed_bytes: 100,
            budget_bytes: 10,
            context: "centering",
        };
        assert!(m.to_string().contains("100"));
    }

    #[test]
    fn interrupted_display_names_reason_and_checkpoint() {
        let e = SrdaError::Interrupted {
            reason: srda_solvers::Interrupt::DeadlineExceeded,
            responses_completed: 2,
            checkpoint: Some(std::path::PathBuf::from("/tmp/fit.ckpt")),
        };
        let s = e.to_string();
        assert!(s.contains("wall-clock"), "{s}");
        assert!(s.contains("2 completed responses"), "{s}");
        assert!(s.contains("/tmp/fit.ckpt"), "{s}");
        let none = SrdaError::Interrupted {
            reason: srda_solvers::Interrupt::Cancelled,
            responses_completed: 0,
            checkpoint: None,
        };
        assert!(none.to_string().contains("no checkpoint"), "{none}");
    }

    #[test]
    fn non_finite_input_display() {
        let e = SrdaError::NonFiniteInput {
            op: "transform_dense",
            row: 7,
        };
        assert!(e.to_string().contains("row 7"));
    }

    #[test]
    fn from_linalg_preserves_source() {
        let inner = srda_linalg::LinalgError::Singular { pivot: 2 };
        let e: SrdaError = inner.clone().into();
        assert_eq!(e, SrdaError::Linalg(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
