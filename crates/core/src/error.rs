//! Error type for discriminant-analysis training and transformation.

use std::fmt;

/// Errors produced when fitting or applying discriminant models.
#[derive(Debug, Clone, PartialEq)]
pub enum SrdaError {
    /// Labels are inconsistent with the data (wrong length, empty class,
    /// fewer than two classes, ...).
    InvalidLabels {
        /// Human-readable description.
        context: String,
    },
    /// Operand shapes are incompatible (e.g. transforming data whose
    /// feature count differs from the training data's).
    ShapeMismatch {
        /// Operation name.
        op: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        got: usize,
    },
    /// A required densification or allocation would exceed the configured
    /// memory budget. This mirrors the paper's Tables IX/X, where LDA,
    /// RLDA, and IDR/QR "can not be applied as the size of training set
    /// increases due to the memory limit".
    MemoryBudgetExceeded {
        /// Bytes the operation would need.
        needed_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
        /// What was being allocated.
        context: &'static str,
    },
    /// An underlying linear-algebra routine failed.
    Linalg(srda_linalg::LinalgError),
    /// An underlying sparse-matrix routine failed.
    Sparse(srda_sparse::SparseError),
}

impl fmt::Display for SrdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrdaError::InvalidLabels { context } => write!(f, "invalid labels: {context}"),
            SrdaError::ShapeMismatch { op, expected, got } => {
                write!(f, "shape mismatch in {op}: expected {expected}, got {got}")
            }
            SrdaError::MemoryBudgetExceeded {
                needed_bytes,
                budget_bytes,
                context,
            } => write!(
                f,
                "memory budget exceeded in {context}: need {needed_bytes} bytes, budget {budget_bytes}"
            ),
            SrdaError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            SrdaError::Sparse(e) => write!(f, "sparse matrix error: {e}"),
        }
    }
}

impl std::error::Error for SrdaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SrdaError::Linalg(e) => Some(e),
            SrdaError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<srda_linalg::LinalgError> for SrdaError {
    fn from(e: srda_linalg::LinalgError) -> Self {
        SrdaError::Linalg(e)
    }
}

impl From<srda_sparse::SparseError> for SrdaError {
    fn from(e: srda_sparse::SparseError) -> Self {
        SrdaError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SrdaError::InvalidLabels {
            context: "class 3 is empty".into(),
        };
        assert!(e.to_string().contains("class 3"));
        let m = SrdaError::MemoryBudgetExceeded {
            needed_bytes: 100,
            budget_bytes: 10,
            context: "centering",
        };
        assert!(m.to_string().contains("100"));
    }

    #[test]
    fn from_linalg_preserves_source() {
        let inner = srda_linalg::LinalgError::Singular { pivot: 2 };
        let e: SrdaError = inner.clone().into();
        assert_eq!(e, SrdaError::Linalg(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
