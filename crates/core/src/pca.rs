//! PCA and the two-stage Fisherfaces (PCA + LDA) baseline.
//!
//! The paper's §II-A closes with: "Since X̄ has zero mean, the SVD of X̄ is
//! exactly the same as the PCA of X̄ ... Our analysis here justifies the
//! rationale behind \[the\] two-stage PCA+LDA approach" — i.e. Belhumeur et
//! al.'s *Fisherfaces* (reference \[5\]). This module provides both pieces:
//!
//! * [`Pca`] — principal component analysis via the same cross-product
//!   SVD the LDA path uses;
//! * [`Fisherfaces`] — PCA down to at most `m − c` dimensions (making the
//!   within-class scatter nonsingular), then LDA in the reduced space,
//!   composed into a single [`Embedding`]. The SVD analysis in §II-A shows
//!   this is mathematically the same stabilization the direct SVD-LDA
//!   performs, which the tests verify.

use crate::labels::ClassIndex;
use crate::lda::{Lda, LdaConfig};
use crate::model::Embedding;
use crate::{Result, SrdaError};
use srda_linalg::ops::matmul;
use srda_linalg::stats::centered;
use srda_linalg::svd::Svd;
use srda_linalg::Mat;

/// Configuration for [`Pca`].
#[derive(Debug, Clone)]
pub struct PcaConfig {
    /// Number of principal components to keep (capped by the data rank).
    pub n_components: usize,
    /// Relative singular-value truncation tolerance.
    pub rank_tol: f64,
}

impl Default for PcaConfig {
    fn default() -> Self {
        PcaConfig {
            n_components: 2,
            rank_tol: 1e-10,
        }
    }
}

/// Principal component analysis (samples as rows).
#[derive(Debug, Clone, Default)]
pub struct Pca {
    config: PcaConfig,
}

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct PcaModel {
    embedding: Embedding,
    /// Singular values of the centered data for the kept components.
    singular_values: Vec<f64>,
}

impl Pca {
    /// Create an estimator with the given configuration.
    pub fn new(config: PcaConfig) -> Self {
        Pca { config }
    }

    /// Fit on dense data. The resulting embedding maps `x ↦ Vᵀ(x − μ)`
    /// where `V` holds the top right-singular vectors of the centered data.
    pub fn fit_dense(&self, x: &Mat) -> Result<PcaModel> {
        if x.nrows() == 0 {
            return Err(SrdaError::InvalidLabels {
                context: "PCA needs at least one sample".into(),
            });
        }
        let (xc, mu) = centered(x);
        let svd = Svd::cross_product(&xc, self.config.rank_tol)?;
        let k = self.config.n_components.min(svd.rank());
        let idx: Vec<usize> = (0..k).collect();
        let weights = svd.v.select_cols(&idx);
        let bias: Vec<f64> = srda_linalg::ops::matvec_t(&weights, &mu)?
            .iter()
            .map(|v| -v)
            .collect();
        Ok(PcaModel {
            embedding: Embedding::new(weights, bias)?,
            singular_values: svd.s[..k].to_vec(),
        })
    }
}

impl PcaModel {
    /// The learned embedding.
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// Singular values (√ of component variances × (m)) of the kept
    /// components, descending.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Fraction of total variance captured by each kept component,
    /// relative to the total variance of the training data.
    pub fn explained_variance_ratio(&self, total_frobenius_sq: f64) -> Vec<f64> {
        self.singular_values
            .iter()
            .map(|s| s * s / total_frobenius_sq)
            .collect()
    }
}

/// Configuration for [`Fisherfaces`].
#[derive(Debug, Clone, Default)]
pub struct FisherfacesConfig {
    /// LDA settings applied in the PCA-reduced space.
    pub lda: LdaConfig,
}

/// The classical two-stage PCA + LDA pipeline (Belhumeur et al. 1997).
#[derive(Debug, Clone, Default)]
pub struct Fisherfaces {
    config: FisherfacesConfig,
}

impl Fisherfaces {
    /// Create an estimator with the given configuration.
    pub fn new(config: FisherfacesConfig) -> Self {
        Fisherfaces { config }
    }

    /// Fit: PCA to at most `m − c` components, then LDA on the scores,
    /// returning the composed affine embedding into `c − 1` dimensions.
    pub fn fit_dense(&self, x: &Mat, y: &[usize]) -> Result<Embedding> {
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "fisherfaces fit_dense",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let index = ClassIndex::new(y)?;
        let m = x.nrows();
        let c = index.n_classes();
        if m <= c {
            return Err(SrdaError::InvalidLabels {
                context: format!("fisherfaces needs m > c ({m} ≤ {c})"),
            });
        }
        // stage 1: PCA to m − c dims (the Fisherfaces prescription, which
        // makes S_w nonsingular in the reduced space)
        let pca = Pca::new(PcaConfig {
            n_components: m - c,
            rank_tol: 1e-10,
        })
        .fit_dense(x)?;
        let scores = pca.embedding().transform_dense(x)?;

        // stage 2: LDA in the reduced space
        let lda = Lda::new(self.config.lda.clone()).fit_dense(&scores, y)?;

        // compose: z = W_ldaᵀ (W_pcaᵀ(x − μ)) + b_lda
        //            = (W_pca·W_lda)ᵀ x + (W_ldaᵀ b_pca + b_lda)
        let weights = matmul(pca.embedding().weights(), lda.weights())?;
        let mut bias = srda_linalg::ops::matvec_t(lda.weights(), pca.embedding().bias())?;
        for (b, bl) in bias.iter_mut().zip(lda.bias()) {
            *b += bl;
        }
        Embedding::new(weights, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(m_per: usize, n: usize, sep: f64) -> (Mat, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for k in 0..3usize {
            for s in 0..m_per {
                let noise = |d: usize| {
                    let h = ((k * 61 + s * 23 + d * 7) as f64 * 12.9898).sin() * 43758.5453;
                    (h - h.floor() - 0.5) * 0.4
                };
                rows.push(
                    (0..n)
                        .map(|d| if d % 3 == k { sep } else { 0.0 } + noise(d))
                        .collect::<Vec<_>>(),
                );
                y.push(k);
            }
        }
        (Mat::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn pca_embeds_with_zero_mean_scores() {
        let (x, _) = blobs(8, 6, 3.0);
        let model = Pca::new(PcaConfig {
            n_components: 3,
            rank_tol: 1e-10,
        })
        .fit_dense(&x)
        .unwrap();
        let z = model.embedding().transform_dense(&x).unwrap();
        assert_eq!(z.ncols(), 3);
        for mu in srda_linalg::stats::col_means(&z) {
            assert!(mu.abs() < 1e-10);
        }
    }

    #[test]
    fn pca_components_ordered_by_variance() {
        let (x, _) = blobs(10, 5, 4.0);
        let model = Pca::new(PcaConfig {
            n_components: 4,
            rank_tol: 1e-10,
        })
        .fit_dense(&x)
        .unwrap();
        let z = model.embedding().transform_dense(&x).unwrap();
        let vars = srda_linalg::stats::col_stds(&z);
        for w in vars.windows(2) {
            assert!(w[0] >= w[1] - 1e-10, "variance not descending: {vars:?}");
        }
        // singular values match score variances: s² = m·var
        let m = x.nrows() as f64;
        for (s, v) in model.singular_values().iter().zip(&vars) {
            assert!((s * s - m * v * v).abs() < 1e-6 * s * s, "{s} vs {v}");
        }
    }

    #[test]
    fn pca_scores_are_uncorrelated() {
        let (x, _) = blobs(12, 6, 3.0);
        let model = Pca::new(PcaConfig {
            n_components: 3,
            rank_tol: 1e-10,
        })
        .fit_dense(&x)
        .unwrap();
        let z = model.embedding().transform_dense(&x).unwrap();
        let (zc, _) = centered(&z);
        let cov = srda_linalg::ops::gram(&zc);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(
                        cov[(i, j)].abs() < 1e-8 * cov[(i, i)].max(1.0),
                        "covariance ({i},{j}) = {}",
                        cov[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn pca_reconstruction_improves_with_components() {
        let (x, _) = blobs(10, 8, 3.0);
        let err = |k: usize| {
            let model = Pca::new(PcaConfig {
                n_components: k,
                rank_tol: 1e-12,
            })
            .fit_dense(&x)
            .unwrap();
            let z = model.embedding().transform_dense(&x).unwrap();
            // reconstruct: x̂ = z·Wᵀ + μ
            let (xc, _) = centered(&x);
            let recon = srda_linalg::ops::matmul_transb(&z, model.embedding().weights()).unwrap();
            recon.sub(&xc).unwrap().frobenius_norm()
        };
        assert!(err(1) > err(3));
        assert!(err(3) > err(6) - 1e-9);
    }

    #[test]
    fn fisherfaces_matches_direct_svd_lda_subspace() {
        // §II-A's claim: the SVD step of direct LDA *is* PCA, so the two
        // pipelines span the same discriminant subspace
        let (x, y) = blobs(8, 10, 4.0);
        let ff = Fisherfaces::default().fit_dense(&x, &y).unwrap();
        let lda = Lda::default().fit_dense(&x, &y).unwrap();
        assert_eq!(ff.n_components(), lda.n_components());
        let cols: Vec<Vec<f64>> = (0..lda.n_components())
            .map(|j| lda.weights().col(j))
            .collect();
        let basis = srda_linalg::gram_schmidt::orthonormalize(&cols, 1e-10);
        for j in 0..ff.n_components() {
            let mut a = ff.weights().col(j);
            srda_linalg::vector::normalize(&mut a);
            let proj: f64 = basis
                .iter()
                .map(|b| srda_linalg::vector::dot(b, &a).powi(2))
                .sum();
            assert!(proj > 1.0 - 1e-6, "direction {j}: proj {proj}");
        }
    }

    #[test]
    fn fisherfaces_handles_singular_high_dimensional_case() {
        // m ≪ n: exactly the case Fisherfaces was invented for
        let (x, y) = blobs(4, 60, 3.0);
        let emb = Fisherfaces::default().fit_dense(&x, &y).unwrap();
        assert!(emb.weights().is_finite());
        let z = emb.transform_dense(&x).unwrap();
        let (cent, _) = srda_linalg::stats::class_means(&z, &y, 3).unwrap();
        let between = srda_linalg::vector::dist2_sq(cent.row(0), cent.row(1)).sqrt();
        assert!(between > 0.0);
    }

    #[test]
    fn fisherfaces_requires_m_greater_than_c() {
        let (x, y) = blobs(1, 8, 3.0); // m = 3 = c
        assert!(Fisherfaces::default().fit_dense(&x, &y).is_err());
    }

    #[test]
    fn pca_empty_input_rejected() {
        assert!(Pca::default().fit_dense(&Mat::zeros(0, 4)).is_err());
    }
}
