//! Regularized LDA (RLDA) — the eigen-based regularized baseline.
//!
//! Solves the generalized problem `S_b a = λ (S_t + αI) a` (Friedman-style
//! Tikhonov regularization of the scatter; the paper's §IV.B comparator).
//! With the thin SVD `X̄ = U Σ Vᵀ` of the centered data, restricting
//! `a = V q` to the row space (the orthogonal complement contributes
//! nothing to `S_b`) reduces the problem to
//!
//! ```text
//! Σ H Hᵀ Σ q = λ (Σ² + αI) q
//! ```
//!
//! with the same tiny `H` as classical LDA. Substituting
//! `p = (Σ² + αI)^{1/2} q` symmetrizes it; the `r × c` matrix
//! `G = (Σ² + αI)^{-1/2} Σ H` then gives the answer through the usual
//! `c × c` cross-product eigenproblem — same asymptotics as LDA, but a
//! stable, shrunk estimate in the small-sample regime.

use crate::labels::ClassIndex;
use crate::lda::{class_sum_matrix, recover_left_eigvecs};
use crate::model::Embedding;
use crate::{Result, SrdaError};
use srda_linalg::ops::{matmul_exec, matvec_t_exec, scale_rows};
use srda_linalg::stats::centered;
use srda_linalg::{ExecPolicy, Executor, Mat};
use srda_obs::Recorder;

/// Configuration for [`Rlda`].
#[derive(Debug, Clone)]
pub struct RldaConfig {
    /// Tikhonov parameter `α > 0` (the paper's experiments use 1).
    pub alpha: f64,
    /// Relative SVD rank-truncation tolerance.
    pub rank_tol: f64,
    /// SVD engine for the centered data (paper: cross-product).
    pub svd_method: crate::lda::SvdMethod,
    /// Relative eigenvalue cut for the reduced problem.
    pub eig_tol: f64,
    /// Optional memory budget in bytes (same guard as LDA's — RLDA also
    /// needs the dense centered matrix and singular factors; the paper
    /// notes RLDA's memory situation "is even worse").
    pub memory_budget_bytes: Option<usize>,
    /// Execution backend for the dense back-projection products
    /// (defaults to [`ExecPolicy::from_env`]).
    pub exec: ExecPolicy,
    /// Optional run governor, probed at the fit's stage boundaries
    /// (before the SVD and before the reduced eigenproblem). RLDA's
    /// stages are not resumable, so an interrupt surfaces as
    /// [`SrdaError::Interrupted`] with no checkpoint.
    pub governor: Option<srda_solvers::RunGovernor>,
    /// Observability sink (spans + kernel-dispatch counters); defaults to
    /// [`Recorder::from_env`], so `SRDA_TRACE=1` instruments the fit.
    pub recorder: Recorder,
}

impl Default for RldaConfig {
    fn default() -> Self {
        RldaConfig {
            alpha: 1.0,
            rank_tol: 1e-10,
            svd_method: crate::lda::SvdMethod::default(),
            eig_tol: 1e-9,
            memory_budget_bytes: None,
            exec: ExecPolicy::from_env(),
            governor: None,
            recorder: Recorder::from_env(),
        }
    }
}

/// Regularized Linear Discriminant Analysis.
#[derive(Debug, Clone, Default)]
pub struct Rlda {
    config: RldaConfig,
}

impl Rlda {
    /// Create an estimator with the given configuration.
    pub fn new(config: RldaConfig) -> Self {
        Rlda { config }
    }

    /// Fit on dense data (samples as rows).
    pub fn fit_dense(&self, x: &Mat, y: &[usize]) -> Result<Embedding> {
        let _fit_span = srda_obs::span!(self.config.recorder, "fit");
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "rlda fit_dense",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let index = ClassIndex::new(y)?;
        let (m, n) = x.shape();

        if let Some(budget) = self.config.memory_budget_bytes {
            let t = m.min(n);
            // centered copy + both singular factors ("even worse" than LDA)
            let needed = (m * n + m * t + n * t) * 8;
            if needed > budget {
                return Err(SrdaError::MemoryBudgetExceeded {
                    needed_bytes: needed,
                    budget_bytes: budget,
                    context: "RLDA centered data + singular factors",
                });
            }
        }

        crate::error::check_governor(self.config.governor.as_ref())?;
        let (xc, mu) = centered(x);
        let svd = self.config.svd_method.factor(&xc, self.config.rank_tol)?;
        let r = svd.rank();
        if r == 0 {
            return Embedding::new(Mat::zeros(n, 0), vec![]);
        }

        // G = (Σ² + αI)^{-1/2} Σ H
        crate::error::check_governor(self.config.governor.as_ref())?;
        let h = class_sum_matrix(&svd.u, &index);
        let damp: Vec<f64> = svd
            .s
            .iter()
            .map(|&s| s / (s * s + self.config.alpha).sqrt())
            .collect();
        let mut g = h;
        scale_rows(&mut g, &damp);

        let (b, _lambdas) = recover_left_eigvecs(&g, self.config.eig_tol)?;

        // a = V (Σ² + αI)^{-1/2} p-block: undo the symmetrizing change of
        // variables, then map back to feature space
        let undo: Vec<f64> = svd
            .s
            .iter()
            .map(|&s| 1.0 / (s * s + self.config.alpha).sqrt())
            .collect();
        let exec = Executor::with_recorder(self.config.exec, self.config.recorder);
        let mut qb = b;
        scale_rows(&mut qb, &undo);
        let weights = matmul_exec(&svd.v, &qb, &exec)?;

        let bias: Vec<f64> = {
            let wmu = matvec_t_exec(&weights, &mu, &exec)?;
            wmu.iter().map(|v| -v).collect()
        };
        Embedding::new(weights, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::Lda;

    fn blobs(m_per: usize, n: usize, sep: f64) -> (Mat, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for k in 0..3usize {
            for s in 0..m_per {
                let noise = |d: usize| {
                    let x = ((k * 97 + s * 13 + d * 7) as f64 * 12.9898).sin() * 43758.5453;
                    (x - x.floor() - 0.5) * 0.5
                };
                rows.push(
                    (0..n)
                        .map(|d| if d % 3 == k { sep } else { 0.0 } + noise(d))
                        .collect::<Vec<_>>(),
                );
                y.push(k);
            }
        }
        (Mat::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn produces_c_minus_1_components() {
        let (x, y) = blobs(8, 6, 4.0);
        let emb = Rlda::default().fit_dense(&x, &y).unwrap();
        assert_eq!(emb.n_components(), 2);
    }

    #[test]
    fn separates_classes() {
        let (x, y) = blobs(8, 6, 6.0);
        let emb = Rlda::default().fit_dense(&x, &y).unwrap();
        let z = emb.transform_dense(&x).unwrap();
        let (cent, _) = srda_linalg::stats::class_means(&z, &y, 3).unwrap();
        let mut within = 0.0;
        for (i, &k) in y.iter().enumerate() {
            within += srda_linalg::vector::dist2_sq(z.row(i), cent.row(k)).sqrt();
        }
        within /= y.len() as f64;
        let between = srda_linalg::vector::dist2_sq(cent.row(0), cent.row(1)).sqrt();
        assert!(between > 3.0 * within);
    }

    #[test]
    fn generalized_regularized_equation_holds() {
        // verify S_b a = λ (S_t + αI) a for the returned directions
        let alpha = 0.8;
        let (x, y) = blobs(6, 5, 4.0);
        let emb = Rlda::new(RldaConfig {
            alpha,
            ..RldaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        let (xc, _) = centered(&x);
        let mut st = srda_linalg::ops::gram(&xc);
        st.add_to_diag(alpha);
        let (cent, counts) = srda_linalg::stats::class_means(&x, &y, 3).unwrap();
        let mu = srda_linalg::stats::col_means(&x);
        let n = x.ncols();
        let mut sb = Mat::zeros(n, n);
        for k in 0..3 {
            let mut d = cent.row(k).to_vec();
            for (di, &mi) in d.iter_mut().zip(&mu) {
                *di -= mi;
            }
            for i in 0..n {
                for j in 0..n {
                    sb[(i, j)] += counts[k] as f64 * d[i] * d[j];
                }
            }
        }
        for q in 0..emb.n_components() {
            let a = emb.weights().col(q);
            let sba = srda_linalg::ops::matvec(&sb, &a).unwrap();
            let sta = srda_linalg::ops::matvec(&st, &a).unwrap();
            let lambda = srda_linalg::vector::dot(&a, &sba) / srda_linalg::vector::dot(&a, &sta);
            for i in 0..n {
                assert!(
                    (sba[i] - lambda * sta[i]).abs()
                        < 1e-6 * sba.iter().fold(0.0f64, |m2, v| m2.max(v.abs())).max(1e-12),
                    "component {q} fails at coord {i}"
                );
            }
        }
    }

    #[test]
    fn alpha_to_zero_recovers_lda_subspace() {
        // full-rank, well-posed case: RLDA(α→0) spans the LDA subspace
        let (x, y) = blobs(10, 4, 5.0);
        let lda = Lda::default().fit_dense(&x, &y).unwrap();
        let rlda = Rlda::new(RldaConfig {
            alpha: 1e-10,
            ..RldaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        // compare the subspaces via principal angles: the projection of
        // each normalized LDA direction onto the RLDA span must be ~1
        let wl = lda.weights();
        let wr = rlda.weights();
        // orthonormalize RLDA's columns
        let cols: Vec<Vec<f64>> = (0..wr.ncols()).map(|j| wr.col(j)).collect();
        let basis = srda_linalg::gram_schmidt::orthonormalize(&cols, 1e-10);
        for j in 0..wl.ncols() {
            let mut a = wl.col(j);
            srda_linalg::vector::normalize(&mut a);
            let proj_sq: f64 = basis
                .iter()
                .map(|b| srda_linalg::vector::dot(b, &a).powi(2))
                .sum();
            assert!(proj_sq > 1.0 - 1e-5, "direction {j}: proj² = {proj_sq}");
        }
    }

    #[test]
    fn handles_singular_small_sample_case() {
        // m ≪ n where plain LDA is ill-posed
        let (x, y) = blobs(3, 40, 3.0);
        let emb = Rlda::default().fit_dense(&x, &y).unwrap();
        assert!(emb.n_components() >= 1);
        assert!(emb.weights().is_finite());
    }

    #[test]
    fn stronger_regularization_shrinks_solution_scale() {
        let (x, y) = blobs(4, 20, 3.0);
        let norm = |alpha: f64| {
            Rlda::new(RldaConfig {
                alpha,
                ..RldaConfig::default()
            })
            .fit_dense(&x, &y)
            .unwrap()
            .weights()
            .frobenius_norm()
        };
        assert!(norm(1e-4) > norm(1e2));
    }

    #[test]
    fn memory_budget_guard() {
        let (x, y) = blobs(4, 8, 3.0);
        let cfg = RldaConfig {
            memory_budget_bytes: Some(64),
            ..RldaConfig::default()
        };
        assert!(matches!(
            Rlda::new(cfg).fit_dense(&x, &y),
            Err(SrdaError::MemoryBudgetExceeded { .. })
        ));
    }
}
