//! Property tests for the metrics registry: concurrent increments from
//! scoped threads must sum exactly (counters are the flam substrate, so a
//! lost update would corrupt complexity measurements), and histogram
//! bucket counts must always partition the observation count.

use proptest::prelude::*;
use srda_obs::Recorder;

/// Deterministic pseudo-random f64 in roughly [-50, 50) without `rand`.
fn noise(i: usize, salt: u64) -> f64 {
    let x = (i as f64 * 12.9898 + salt as f64 * 78.233).sin() * 43758.5453;
    (x - x.floor() - 0.5) * 100.0
}

#[test]
fn concurrent_increments_sum_exactly() {
    // scoped-thread fan-in on one shared counter cell: the exact pattern
    // the threaded Executor backend produces
    let r = Recorder::new_enabled();
    let c = r.counter("hits");
    let threads = 8;
    let per_thread = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let c = c.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    // mix of add sizes so torn updates would be visible
                    c.add(1 + ((t as u64 + i) % 3));
                }
            });
        }
    });
    let expected: u64 = (0..threads as u64)
        .map(|t| (0..per_thread).map(|i| 1 + ((t + i) % 3)).sum::<u64>())
        .sum();
    assert_eq!(c.get(), expected);
    assert_eq!(r.snapshot().counters["hits"], expected);
}

#[test]
fn concurrent_histogram_observations_all_land() {
    let r = Recorder::new_enabled();
    let h = r.histogram("vals", &[-25.0, 0.0, 25.0]);
    let threads = 6;
    let per_thread = 5_000;
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    h.observe(noise(i, t as u64));
                }
            });
        }
    });
    let snap = &r.snapshot().histograms["vals"];
    let total = threads as u64 * per_thread as u64;
    assert_eq!(snap.count, total);
    assert_eq!(snap.counts.iter().sum::<u64>() + snap.overflow, total);
}

proptest! {
    // Counter totals equal the sum of all per-thread contributions for
    // arbitrary thread counts and increment schedules.
    #[test]
    fn prop_counter_sums_exactly(
        schedules in proptest::collection::vec(
            proptest::collection::vec(0u64..1000, 0..50), 1..8)
    ) {
        let r = Recorder::new_enabled();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for sched in &schedules {
                let c = c.clone();
                s.spawn(move || {
                    for &n in sched {
                        c.add(n);
                    }
                });
            }
        });
        let expected: u64 = schedules.iter().flatten().sum();
        prop_assert_eq!(c.get(), expected);
    }

    // Histogram bucket counts partition the observations: each value
    // lands in exactly one bucket (or overflow), so the bucket sum always
    // equals the total count, and each bucket matches a reference count.
    #[test]
    fn prop_histogram_counts_partition(
        values in proptest::collection::vec(-1e6f64..1e6, 0..200),
        raw_bounds in proptest::collection::vec(-1e6f64..1e6, 1..6)
    ) {
        let mut bounds = raw_bounds;
        bounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bounds.dedup();
        let r = Recorder::new_enabled();
        let h = r.histogram("h", &bounds);
        for &v in &values {
            h.observe(v);
        }
        let snap = &r.snapshot().histograms["h"];
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(
            snap.counts.iter().sum::<u64>() + snap.overflow,
            values.len() as u64
        );
        // reference partition
        for (i, &b) in bounds.iter().enumerate() {
            let lo = if i == 0 { f64::NEG_INFINITY } else { bounds[i - 1] };
            let expect = values.iter().filter(|&&v| v > lo && v <= b).count() as u64;
            prop_assert_eq!(snap.counts[i], expect, "bucket {}", i);
        }
        let above = values.iter().filter(|&&v| v > *bounds.last().unwrap()).count() as u64;
        prop_assert_eq!(snap.overflow, above);
    }
}
