//! Metrics registry primitives: monotonic counters, gauges (stored on the
//! [`crate::Recorder`] directly), and fixed-bucket histograms.
//!
//! Counters hand out a shared atomic cell, so hot loops resolve the name
//! once and then pay a single relaxed `fetch_add` per event — the same
//! cost profile as the historical process-global flam counter this
//! registry supersedes. The cell is also exposed ([`Counter::cell`]) so
//! `srda_linalg::flam::scoped` can stream flam into a registry counter
//! without `srda-linalg` depending on this crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Handle to a monotonic counter; inert when obtained from a disabled
/// recorder.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    pub(crate) fn active(cell: Arc<AtomicU64>) -> Self {
        Counter { cell: Some(cell) }
    }

    /// The inert handle a disabled recorder hands out.
    pub fn inactive() -> Self {
        Counter { cell: None }
    }

    /// Increment by `n` (relaxed; totals are exact, ordering is not
    /// observable).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for an inert handle).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }

    /// The shared atomic cell, for sinks that accumulate directly (e.g.
    /// `srda_linalg::flam::scoped`). `None` for an inert handle.
    pub fn cell(&self) -> Option<Arc<AtomicU64>> {
        self.cell.clone()
    }
}

/// Shared state of one fixed-bucket histogram.
pub(crate) struct HistogramInner {
    /// Ascending inclusive upper bounds; observations `v <= bounds[i]`
    /// land in the first such bucket `i`.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum as f64 bits, updated by CAS (uncontended in practice).
    sum_bits: AtomicU64,
}

impl HistogramInner {
    pub(crate) fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, || AtomicU64::new(0));
        HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub(crate) fn snapshot(&self) -> crate::report::HistogramSnapshot {
        crate::report::HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.buckets[..self.bounds.len()]
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.buckets[self.bounds.len()].load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Handle to a fixed-bucket histogram; inert when obtained from a
/// disabled recorder.
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Option<Arc<HistogramInner>>,
}

impl Histogram {
    pub(crate) fn active(inner: Arc<HistogramInner>) -> Self {
        Histogram { inner: Some(inner) }
    }

    /// The inert handle a disabled recorder hands out.
    pub fn inactive() -> Self {
        Histogram { inner: None }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(inner) = &self.inner {
            inner.observe(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    #[test]
    fn counter_accumulates_and_shares_its_cell() {
        let r = Recorder::new_enabled();
        let c = r.counter("ops");
        c.add(40);
        c.inc();
        c.inc();
        assert_eq!(c.get(), 42);
        // the same name resolves to the same cell
        assert_eq!(r.counter("ops").get(), 42);
        let cell = c.cell().unwrap();
        cell.fetch_add(8, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(r.snapshot().counters["ops"], 50);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let r = Recorder::new_enabled();
        let h = r.histogram("res", &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.1, 0.5, 2.0, 100.0] {
            h.observe(v);
        }
        let snap = &r.snapshot().histograms["res"];
        assert_eq!(snap.counts, vec![2, 1, 1]); // <=0.1 ×2, <=1.0 ×1, <=10 ×1
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 102.65).abs() < 1e-12);
    }

    #[test]
    fn inert_handles_do_nothing() {
        let c = super::Counter::inactive();
        c.add(5);
        assert_eq!(c.get(), 0);
        assert!(c.cell().is_none());
        super::Histogram::inactive().observe(1.0);
    }
}
