//! Hierarchical span timer.
//!
//! A span is a named wall-time interval: `recorder.span("fit")` opens it,
//! dropping the returned [`SpanGuard`] closes and records it. Hierarchy is
//! carried in the path itself (`"fit/response[3]/lsqr"` is a child of
//! `"fit"`), so spans need no thread-local stack and can be opened on any
//! thread — each record carries a small stable thread tag instead.

use crate::{thread_tag, RecorderInner};
use std::time::Instant;

/// An open span; records itself into the recorder when dropped.
///
/// Inactive guards (from a disabled recorder) cost one `Option` check at
/// drop time and nothing else.
#[must_use = "a span measures the time until this guard is dropped"]
pub struct SpanGuard {
    state: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: &'static RecorderInner,
    path: String,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn active(inner: &'static RecorderInner, path: String) -> Self {
        SpanGuard {
            state: Some(ActiveSpan {
                inner,
                path,
                start: Instant::now(),
            }),
        }
    }

    /// The inert guard a disabled recorder hands out (also used by the
    /// [`crate::span!`] macro to skip formatting entirely).
    pub fn inactive() -> Self {
        SpanGuard { state: None }
    }

    /// Is this guard actually recording?
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// Close the span now instead of at end of scope.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.state.take() {
            let end = Instant::now();
            active
                .inner
                .push_span(active.path, active.start, end, thread_tag());
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    #[test]
    fn finish_records_early() {
        let r = Recorder::new_enabled();
        let g = r.span("a");
        assert!(g.is_active());
        g.finish();
        assert_eq!(r.snapshot().spans.len(), 1);
    }

    #[test]
    fn inactive_guard_records_nothing() {
        let g = super::SpanGuard::inactive();
        assert!(!g.is_active());
        drop(g);
    }

    #[test]
    fn spans_carry_thread_tags() {
        let r = Recorder::new_enabled();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(move || {
                    let _g = r.span("worker");
                });
            }
        });
        let rep = r.snapshot();
        assert_eq!(rep.spans.len(), 2);
        // two distinct worker threads must have distinct tags
        assert_ne!(rep.spans[0].thread, rep.spans[1].thread);
    }
}
