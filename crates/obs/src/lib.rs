//! Observability layer for the SRDA reproduction: hierarchical span
//! timers, a metrics registry, and per-iteration solver telemetry.
//!
//! The paper's claims are quantitative — SRDA-LSQR is `O(k·c·ms)` with a
//! ~9× max speedup over LDA at `m = n` — so the reproduction instruments
//! itself: every fit can emit a span tree covering its wall time, a
//! registry of counters/gauges/histograms (including the flam complexity
//! counters), and the full per-iteration residual trajectory of every
//! LSQR/CGLS solve. The whole layer is dependency-free.
//!
//! ## The `Recorder` handle
//!
//! Everything hangs off a [`Recorder`], a `Copy` handle that is threaded
//! through `SrdaConfig`, the kernel `Executor`, and the solver control
//! structs. A **disabled** recorder (the default) is a null pointer: every
//! instrumentation call is a branch on `Option::<&_>::is_some()` and
//! nothing else, so hot loops keep their uninstrumented cost. An
//! **enabled** recorder points at a registry allocated once per recording
//! session and intentionally leaked (`Box::leak`) — that is what makes the
//! handle `Copy` and lets it cross `std::thread::scope` boundaries without
//! reference-counting traffic in kernels. A process creates a handful of
//! recorders (one per CLI run, one per bench, one per test), so the leak
//! is bounded and deliberate.
//!
//! ## Determinism contract
//!
//! Instrumentation only *observes* solver state; it never perturbs the
//! float sequence. Telemetry recorded by the serial and threaded backends
//! is therefore bitwise identical — `tests/telemetry_golden.rs` locks
//! this down against committed residual-bit snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod report;
pub mod span;
pub mod telemetry;

pub use metrics::{Counter, Histogram};
pub use report::{HistogramSnapshot, ObsReport, SpanRecord, TraceSnapshot};
pub use span::SpanGuard;
pub use telemetry::{IterationRecord, SolverTrace};

use metrics::HistogramInner;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Environment variable that turns recording on for code paths that build
/// their recorder via [`Recorder::from_env`] (the config defaults): any
/// value other than `0`/`false`/empty enables it. This is how
/// `scripts/ci.sh` runs the whole test suite traced.
pub const TRACE_ENV: &str = "SRDA_TRACE";

/// The shared state behind an enabled [`Recorder`].
///
/// Public only so `Recorder` can expose a `&'static` to it; construct via
/// [`Recorder::new_enabled`].
pub struct RecorderInner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, u64>>, // f64 bit patterns
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
    traces: Mutex<Vec<Arc<telemetry::TraceInner>>>,
}

impl RecorderInner {
    fn new() -> Self {
        RecorderInner {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            traces: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn push_span(&self, path: String, start: Instant, end: Instant, thread: u64) {
        let rec = SpanRecord {
            path,
            start_ns: start.saturating_duration_since(self.epoch).as_nanos() as u64,
            dur_ns: end.saturating_duration_since(start).as_nanos() as u64,
            thread,
        };
        self.spans.lock().expect("span log poisoned").push(rec);
    }
}

/// A `Copy` handle to the observability registry; disabled by default.
///
/// See the crate docs for the enable/disable contract. All methods are
/// safe to call from any thread.
#[derive(Clone, Copy, Default)]
pub struct Recorder {
    inner: Option<&'static RecorderInner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl PartialEq for Recorder {
    fn eq(&self, other: &Self) -> bool {
        match (self.inner, other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => std::ptr::eq(a, b),
            _ => false,
        }
    }
}

impl Eq for Recorder {}

// sequential per-thread ids: ThreadId::as_u64 is unstable, and the span
// log only needs a stable small integer to distinguish workers
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);
thread_local! {
    static THREAD_TAG: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's small stable tag used in span records.
pub fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| *t)
}

impl Recorder {
    /// The no-op handle: every call is a null check.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Allocate a fresh recording session. The backing registry lives for
    /// the rest of the process (see the crate docs on the deliberate
    /// leak), which is what makes the handle `Copy`.
    pub fn new_enabled() -> Self {
        Recorder {
            inner: Some(Box::leak(Box::new(RecorderInner::new()))),
        }
    }

    /// Enabled iff the environment variable [`TRACE_ENV`] is set to a
    /// truthy value; this is the default recorder in every fit config, so
    /// `SRDA_TRACE=1 cargo test` traces the entire suite.
    pub fn from_env() -> Self {
        match std::env::var(TRACE_ENV) {
            Ok(v) if !v.is_empty() && v != "0" && v != "false" => Self::new_enabled(),
            _ => Self::disabled(),
        }
    }

    /// Is this handle recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a wall-time span; it records itself when the guard drops.
    /// Disabled recorders return an inert guard without evaluating any
    /// formatting (use the [`span!`] macro to also skip the `format!`).
    pub fn span(&self, path: impl Into<String>) -> SpanGuard {
        match self.inner {
            Some(inner) => SpanGuard::active(inner, path.into()),
            None => SpanGuard::inactive(),
        }
    }

    /// Resolve (creating on first use) the monotonic counter `name`.
    /// Returns an inert handle when disabled.
    pub fn counter(&self, name: &str) -> Counter {
        match self.inner {
            Some(inner) => {
                let mut map = inner.counters.lock().expect("counter map poisoned");
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                    .clone();
                Counter::active(cell)
            }
            None => Counter::inactive(),
        }
    }

    /// One-shot counter increment (resolves the handle each call; prefer
    /// [`Recorder::counter`] in loops).
    pub fn add(&self, name: &str, n: u64) {
        if self.inner.is_some() {
            self.counter(name).add(n);
        }
    }

    /// Set the gauge `name` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = self.inner {
            inner
                .gauges
                .lock()
                .expect("gauge map poisoned")
                .insert(name.to_string(), value.to_bits());
        }
    }

    /// Resolve (creating on first use) the fixed-bucket histogram `name`.
    /// `bounds` are ascending inclusive upper bucket bounds; observations
    /// above the last bound land in an overflow bucket. Bounds passed on
    /// later calls for an existing histogram are ignored.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        match self.inner {
            Some(inner) => {
                let mut map = inner.histograms.lock().expect("histogram map poisoned");
                let h = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramInner::new(bounds)))
                    .clone();
                Histogram::active(h)
            }
            None => Histogram::inactive(),
        }
    }

    /// Open a solver telemetry channel labelled `label` (e.g.
    /// `"fit/response[3]/lsqr"`). Returns `None` when disabled so solver
    /// loops pay exactly one branch.
    pub fn solver_trace(&self, label: impl Into<String>) -> Option<SolverTrace> {
        let inner = self.inner?;
        let trace = SolverTrace::new(label.into());
        inner
            .traces
            .lock()
            .expect("trace list poisoned")
            .push(trace.shared());
        Some(trace)
    }

    /// Snapshot everything recorded so far into a plain-data report.
    /// Returns an empty report for a disabled recorder.
    pub fn snapshot(&self) -> ObsReport {
        let Some(inner) = self.inner else {
            return ObsReport::default();
        };
        ObsReport {
            spans: inner.spans.lock().expect("span log poisoned").clone(),
            counters: inner
                .counters
                .lock()
                .expect("counter map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .lock()
                .expect("gauge map poisoned")
                .iter()
                .map(|(k, bits)| (k.clone(), f64::from_bits(*bits)))
                .collect(),
            histograms: inner
                .histograms
                .lock()
                .expect("histogram map poisoned")
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            traces: inner
                .traces
                .lock()
                .expect("trace list poisoned")
                .iter()
                .map(|t| t.snapshot())
                .collect(),
        }
    }
}

/// Open a span on a recorder, skipping the `format!` entirely when the
/// recorder is disabled: `span!(rec, "fit/response[{j}]/lsqr")`.
#[macro_export]
macro_rules! span {
    ($rec:expr, $($fmt:tt)+) => {
        if $rec.is_enabled() {
            $rec.span(format!($($fmt)+))
        } else {
            $crate::SpanGuard::inactive()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let _g = r.span("fit");
        r.add("c", 5);
        r.gauge("g", 1.0);
        r.histogram("h", &[1.0]).observe(0.5);
        assert!(r.solver_trace("t").is_none());
        let rep = r.snapshot();
        assert!(rep.spans.is_empty());
        assert!(rep.counters.is_empty());
    }

    #[test]
    fn spans_counters_gauges_roundtrip() {
        let r = Recorder::new_enabled();
        {
            let _fit = r.span("fit");
            let _inner = span!(r, "fit/response[{}]/lsqr", 3);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        r.add("flam.fit", 41);
        r.add("flam.fit", 1);
        r.gauge("alpha", 0.5);
        r.gauge("alpha", 1.5);
        let rep = r.snapshot();
        assert_eq!(rep.spans.len(), 2);
        assert!(rep.spans.iter().any(|s| s.path == "fit/response[3]/lsqr"));
        assert_eq!(rep.counters["flam.fit"], 42);
        assert_eq!(rep.gauges["alpha"], 1.5);
        // the outer span covers the inner one
        let fit = rep.spans.iter().find(|s| s.path == "fit").unwrap();
        let inner = rep.spans.iter().find(|s| s.path != "fit").unwrap();
        assert!(fit.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn recorder_equality_is_identity() {
        let a = Recorder::new_enabled();
        let b = Recorder::new_enabled();
        let a2 = a;
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(Recorder::disabled(), Recorder::disabled());
        assert_ne!(a, Recorder::disabled());
    }

    #[test]
    fn solver_trace_reaches_snapshot() {
        let r = Recorder::new_enabled();
        let t = r.solver_trace("fit/response[0]/lsqr").unwrap();
        t.configure("lsqr", "serial", 1.0);
        t.iteration(1, 0.5, 0.25);
        t.iteration(2, 0.25, 0.125);
        t.governor_check();
        let rep = r.snapshot();
        assert_eq!(rep.traces.len(), 1);
        let tr = &rep.traces[0];
        assert_eq!(tr.label, "fit/response[0]/lsqr");
        assert_eq!(tr.solver, "lsqr");
        assert_eq!(tr.iterations.len(), 2);
        assert_eq!(tr.governor_checks, 1);
    }
}
