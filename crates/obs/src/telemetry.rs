//! Solver telemetry: the per-iteration state of an LSQR or CGLS run.
//!
//! Each solve that runs under an enabled recorder gets its own channel
//! ([`SolverTrace`]), so concurrent response solves never contend on a
//! shared structure. The channel records exactly the quantities the solver
//! already computes — the damped residual norm and the `‖Aᵀr‖` estimate
//! for LSQR, the gradient norm for CGLS — plus the damping in effect, the
//! execution backend, and how many governor checks the loop made.
//! Because nothing here feeds back into the solver, a traced run is
//! bitwise identical to an untraced one, and (by the kernel determinism
//! contract) serial and threaded backends produce identical telemetry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One iteration of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// 1-based iteration number (matches `LsqrResult::iterations`).
    pub iteration: usize,
    /// LSQR: damped residual `‖[r; damp·x]‖` estimate. CGLS: gradient
    /// norm `‖Aᵀr − αx‖`.
    pub residual: f64,
    /// LSQR: the `‖Aᵀr̄‖` estimate `α·|c·φ̄|` from the second
    /// Paige-Saunders rule. CGLS: the same gradient norm as `residual`.
    pub atr_norm: f64,
}

#[derive(Default)]
struct TraceMeta {
    solver: String,
    backend: String,
    damp: f64,
}

/// Shared state of one telemetry channel.
pub(crate) struct TraceInner {
    label: String,
    meta: Mutex<TraceMeta>,
    iterations: Mutex<Vec<IterationRecord>>,
    governor_checks: AtomicU64,
}

impl TraceInner {
    pub(crate) fn snapshot(&self) -> crate::report::TraceSnapshot {
        let meta = self.meta.lock().expect("trace meta poisoned");
        crate::report::TraceSnapshot {
            label: self.label.clone(),
            solver: meta.solver.clone(),
            backend: meta.backend.clone(),
            damp: meta.damp,
            governor_checks: self.governor_checks.load(Ordering::Relaxed),
            iterations: self
                .iterations
                .lock()
                .expect("trace iterations poisoned")
                .clone(),
        }
    }
}

/// A per-solve telemetry channel handed out by
/// [`crate::Recorder::solver_trace`]. Cheap to clone; all clones feed the
/// same channel.
#[derive(Clone)]
pub struct SolverTrace {
    inner: Arc<TraceInner>,
}

impl SolverTrace {
    pub(crate) fn new(label: String) -> Self {
        SolverTrace {
            inner: Arc::new(TraceInner {
                label,
                meta: Mutex::new(TraceMeta::default()),
                iterations: Mutex::new(Vec::new()),
                governor_checks: AtomicU64::new(0),
            }),
        }
    }

    pub(crate) fn shared(&self) -> Arc<TraceInner> {
        self.inner.clone()
    }

    /// The label this channel was opened with.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Record the solve's static context: solver name (`"lsqr"`,
    /// `"cgls"`), execution backend (`"serial"`, `"threaded"`), and the
    /// damping parameter in effect.
    pub fn configure(&self, solver: &str, backend: &str, damp: f64) {
        let mut meta = self.inner.meta.lock().expect("trace meta poisoned");
        meta.solver = solver.to_string();
        meta.backend = backend.to_string();
        meta.damp = damp;
    }

    /// Record the solver name and damping only — called by the solver
    /// itself, which does not know what backend its operator runs on.
    pub fn set_solver(&self, solver: &str, damp: f64) {
        let mut meta = self.inner.meta.lock().expect("trace meta poisoned");
        meta.solver = solver.to_string();
        meta.damp = damp;
    }

    /// Record the execution backend only — called by the fit driver,
    /// which owns the executor the solver's operator runs on.
    pub fn set_backend(&self, backend: &str) {
        let mut meta = self.inner.meta.lock().expect("trace meta poisoned");
        meta.backend = backend.to_string();
    }

    /// Record one completed iteration.
    #[inline]
    pub fn iteration(&self, iteration: usize, residual: f64, atr_norm: f64) {
        self.inner
            .iterations
            .lock()
            .expect("trace iterations poisoned")
            .push(IterationRecord {
                iteration,
                residual,
                atr_norm,
            });
    }

    /// Record one governor budget/cancellation check.
    #[inline]
    pub fn governor_check(&self) {
        self.inner.governor_checks.fetch_add(1, Ordering::Relaxed);
    }

    /// The residual column of the recorded iterations, in order.
    pub fn residuals(&self) -> Vec<f64> {
        self.inner
            .iterations
            .lock()
            .expect("trace iterations poisoned")
            .iter()
            .map(|r| r.residual)
            .collect()
    }

    /// The recorded iterations, in order.
    pub fn iterations(&self) -> Vec<IterationRecord> {
        self.inner
            .iterations
            .lock()
            .expect("trace iterations poisoned")
            .clone()
    }

    /// Governor checks recorded so far.
    pub fn governor_checks(&self) -> u64 {
        self.inner.governor_checks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accumulates_in_order() {
        let t = SolverTrace::new("r0".into());
        t.configure("lsqr", "serial", 0.5);
        for i in 1..=3 {
            t.iteration(i, 1.0 / i as f64, 0.5 / i as f64);
        }
        t.governor_check();
        t.governor_check();
        assert_eq!(t.label(), "r0");
        assert_eq!(t.residuals(), vec![1.0, 0.5, 1.0 / 3.0]);
        assert_eq!(t.governor_checks(), 2);
        let snap = t.shared().snapshot();
        assert_eq!(snap.solver, "lsqr");
        assert_eq!(snap.backend, "serial");
        assert_eq!(snap.damp, 0.5);
        assert_eq!(snap.iterations.len(), 3);
        assert_eq!(snap.iterations[2].iteration, 3);
    }

    #[test]
    fn clones_share_the_channel() {
        let t = SolverTrace::new("x".into());
        let t2 = t.clone();
        t.iteration(1, 1.0, 1.0);
        t2.iteration(2, 0.5, 0.5);
        assert_eq!(t.iterations().len(), 2);
    }
}
