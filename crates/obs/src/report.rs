//! Plain-data snapshot of a recording session, with the two export
//! formats the CLI speaks (`--trace-format {json,flame}`) and the span
//! coverage measure the acceptance tests assert on.
//!
//! The JSON is hand-rendered (schema `srda-obs-v1`) because the workspace
//! must stay dependency-free; the flame output is the standard folded-
//! stack format (`path;seg;seg <microseconds>` per line) consumed by
//! `flamegraph.pl` and speedscope.

use std::collections::BTreeMap;

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Hierarchical path, segments separated by `/`.
    pub path: String,
    /// Start offset from the recorder's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Small stable tag of the recording thread.
    pub thread: u64,
}

/// Snapshot of a fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending inclusive upper bounds.
    pub bounds: Vec<f64>,
    /// One count per bound.
    pub counts: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
}

/// Snapshot of one solver telemetry channel.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Channel label (e.g. `fit/response[3]/lsqr`).
    pub label: String,
    /// `"lsqr"` or `"cgls"` (empty if the solve never configured it).
    pub solver: String,
    /// Execution backend the solve ran on.
    pub backend: String,
    /// Damping parameter in effect.
    pub damp: f64,
    /// Governor checks the loop made.
    pub governor_checks: u64,
    /// Per-iteration records, in order.
    pub iterations: Vec<crate::IterationRecord>,
}

/// Everything a [`crate::Recorder`] collected, as plain data.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Closed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Solver telemetry channels, in open order.
    pub traces: Vec<TraceSnapshot>,
}

/// Escape a string for a JSON literal (quotes not included).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an f64 as a JSON value: shortest-roundtrip decimal for finite
/// values (Rust's `{}` float formatting round-trips), `null` otherwise.
fn jf64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // "1" is a valid JSON number, but keep floats visibly floats
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

impl ObsReport {
    /// Serialize the whole report as schema `srda-obs-v1` JSON. This is
    /// the `--metrics-out` payload and the `"obs"` section the bench
    /// driver embeds in `BENCH_*.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"srda-obs-v1\",\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}, \"thread\": {}}}",
                esc(&s.path),
                s.start_ns,
                s.dur_ns,
                s.thread
            ));
        }
        out.push_str("\n  ],\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", esc(k), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", esc(k), jf64(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let bounds: Vec<String> = h.bounds.iter().map(|b| jf64(*b)).collect();
            let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "\n    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"overflow\": {}, \
                 \"count\": {}, \"sum\": {}}}",
                esc(k),
                bounds.join(", "),
                counts.join(", "),
                h.overflow,
                h.count,
                jf64(h.sum)
            ));
        }
        out.push_str("\n  },\n  \"solver_traces\": [");
        for (i, t) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"label\": \"{}\", \"solver\": \"{}\", \"backend\": \"{}\", \
                 \"damp\": {}, \"governor_checks\": {}, \"iterations\": [",
                esc(&t.label),
                esc(&t.solver),
                esc(&t.backend),
                jf64(t.damp),
                t.governor_checks
            ));
            for (j, it) in t.iterations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"iter\": {}, \"residual\": {}, \"atr_norm\": {}}}",
                    it.iteration,
                    jf64(it.residual),
                    jf64(it.atr_norm)
                ));
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serialize the span log in folded-stack flame format: one line per
    /// distinct path, `seg;seg;seg <total microseconds>`.
    pub fn to_flame(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            *agg.entry(s.path.replace('/', ";")).or_insert(0) += s.dur_ns / 1_000;
        }
        let mut out = String::new();
        for (stack, micros) in agg {
            out.push_str(&format!("{stack} {micros}\n"));
        }
        out
    }

    /// Fraction of the wall time of the (single) span named `root` that
    /// is covered by the union of its descendant spans' intervals — the
    /// "spans cover ≥ 95% of fit wall time" acceptance measure. Returns
    /// `None` when `root` is absent or has zero duration.
    pub fn span_coverage(&self, root: &str) -> Option<f64> {
        let r = self.spans.iter().find(|s| s.path == root)?;
        if r.dur_ns == 0 {
            return None;
        }
        let (r0, r1) = (r.start_ns, r.start_ns + r.dur_ns);
        let prefix = format!("{root}/");
        let mut intervals: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.path.starts_with(&prefix))
            .map(|s| (s.start_ns.max(r0), (s.start_ns + s.dur_ns).min(r1)))
            .filter(|(a, b)| a < b)
            .collect();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for (a, b) in intervals {
            match cur {
                None => cur = Some((a, b)),
                Some((ca, cb)) if a <= cb => cur = Some((ca, cb.max(b))),
                Some((ca, cb)) => {
                    covered += cb - ca;
                    cur = Some((a, b));
                }
            }
        }
        if let Some((ca, cb)) = cur {
            covered += cb - ca;
        }
        Some(covered as f64 / (r1 - r0) as f64)
    }

    /// Total duration (ns) of the spans whose path equals `path`.
    pub fn span_total_ns(&self, path: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.path == path)
            .map(|s| s.dur_ns)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            path: path.into(),
            start_ns: start,
            dur_ns: dur,
            thread: 0,
        }
    }

    #[test]
    fn coverage_unions_overlapping_children() {
        let rep = ObsReport {
            spans: vec![
                span("fit", 0, 100),
                span("fit/a", 0, 50),
                span("fit/a/deep", 10, 30), // nested inside fit/a: no double count
                span("fit/b", 40, 60),      // overlaps fit/a by 10
            ],
            ..ObsReport::default()
        };
        let cov = rep.span_coverage("fit").unwrap();
        assert!((cov - 1.0).abs() < 1e-12, "covered 0..100 fully, got {cov}");

        let rep2 = ObsReport {
            spans: vec![span("fit", 0, 100), span("fit/a", 0, 50)],
            ..ObsReport::default()
        };
        assert!((rep2.span_coverage("fit").unwrap() - 0.5).abs() < 1e-12);
        assert!(rep2.span_coverage("nope").is_none());
    }

    #[test]
    fn json_is_structurally_sound() {
        let mut rep = ObsReport {
            spans: vec![span("fit", 0, 5)],
            ..ObsReport::default()
        };
        rep.counters.insert("flam.fit".into(), 7);
        rep.gauges.insert("alpha".into(), 1.5);
        rep.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                bounds: vec![1.0],
                counts: vec![2],
                overflow: 1,
                count: 3,
                sum: 4.5,
            },
        );
        rep.traces.push(TraceSnapshot {
            label: "fit/response[0]/lsqr".into(),
            solver: "lsqr".into(),
            backend: "serial".into(),
            damp: 1.0,
            governor_checks: 2,
            iterations: vec![crate::IterationRecord {
                iteration: 1,
                residual: 0.5,
                atr_norm: f64::NAN, // must render as null, not NaN
            }],
        });
        let json = rep.to_json();
        assert!(json.contains("\"schema\": \"srda-obs-v1\""));
        assert!(json.contains("\"flam.fit\": 7"));
        assert!(json.contains("\"atr_norm\": null"));
        assert!(json.contains("\"damp\": 1.0"));
        // balanced braces/brackets (cheap structural check without a parser)
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = json.matches(open).count();
            let c = json.matches(close).count();
            assert_eq!(o, c, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn flame_folds_paths() {
        let rep = ObsReport {
            spans: vec![
                span("fit", 0, 10_000),
                span("fit/a", 0, 3_000),
                span("fit/a", 5_000, 3_000),
            ],
            ..ObsReport::default()
        };
        let flame = rep.to_flame();
        assert!(flame.contains("fit 10\n"));
        assert!(flame.contains("fit;a 6\n"));
    }
}
