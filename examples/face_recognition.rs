//! Face recognition, the paper's motivating application: compare all four
//! algorithms (LDA, RLDA, SRDA, IDR/QR) on a PIE-like dataset at one
//! training size — a single row of the paper's Tables III & IV.
//!
//! Run with: `cargo run --release --example face_recognition`

use srda::SrdaConfig;
use srda_data::{per_class_split, pie_like};
use srda_eval::{run_dense, Algo};

fn main() {
    let data = pie_like(0.12, 11); // 68 subjects, 1024 "pixels"
    let l = 10; // training images per subject
    println!(
        "PIE-like: {} subjects, {} features, {} images each; {} train/subject\n",
        data.n_classes,
        data.x.ncols(),
        data.x.nrows() / data.n_classes,
        l
    );

    let split = per_class_split(&data.labels, l, 3);
    let train = data.select(&split.train);
    let test = data.select(&split.test);

    println!(
        "{:8} {:>9} {:>10} {:>14}",
        "method", "error %", "train s", "train Gflam"
    );
    for algo in [
        Algo::Lda,
        Algo::Rlda { alpha: 1.0 },
        Algo::Srda(SrdaConfig::default()),
        Algo::IdrQr { lambda: 1.0 },
    ] {
        let out = run_dense(
            &algo,
            &train.x,
            &train.labels,
            &test.x,
            &test.labels,
            data.n_classes,
            None,
        );
        println!(
            "{:8} {:>9.2} {:>10.3} {:>14.3}",
            algo.name(),
            out.error_rate.unwrap() * 100.0,
            out.train_secs.unwrap(),
            out.train_flam.unwrap() as f64 / 1e9,
        );
    }
    // bonus row: the classical Fisherfaces two-stage pipeline the paper's
    // §II-A analysis subsumes (not part of the paper's comparison tables)
    {
        let t0 = std::time::Instant::now();
        let emb = srda::Fisherfaces::default()
            .fit_dense(&train.x, &train.labels)
            .unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let z_train = emb.transform_dense(&train.x).unwrap();
        let z_test = emb.transform_dense(&test.x).unwrap();
        let err = srda_eval::nearest_centroid_error_rate(
            &z_train,
            &train.labels,
            &z_test,
            &test.labels,
            data.n_classes,
        );
        println!(
            "{:8} {:>9.2} {:>10.3} {:>14}",
            "PCA+LDA",
            err * 100.0,
            secs,
            "(≈ LDA)"
        );
    }

    println!("\nexpected shape (paper Tables III/IV): SRDA ≈ RLDA < IDR/QR < LDA in error;");
    println!("SRDA much faster than LDA/RLDA, IDR/QR fastest; PCA+LDA tracks LDA (§II-A).");
}
