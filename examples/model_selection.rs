//! Figure-5-style regularization sweep with machine-readable output:
//! prints a CSV of SRDA test error vs α/(1+α) across all four dataset
//! families, plus the LDA and IDR/QR reference lines for the dense ones.
//!
//! Run with: `cargo run --release --example model_selection > fig5.csv`

use srda::{SrdaConfig, SrdaSolver};
use srda_data::{per_class_split, ratio_split};
use srda_eval::{run_dense, run_sparse, Algo};

fn main() {
    println!("dataset,train,alpha_ratio,srda_err,lda_err,idr_err");

    // dense panels
    let panels: Vec<(&str, srda_data::DenseDataset, usize)> = vec![
        ("pie", srda_data::pie_like(0.1, 9), 5),
        ("isolet", srda_data::isolet_like(0.1, 9), 10),
        ("mnist", srda_data::mnist_like(0.1, 9), 15),
    ];
    for (name, data, l) in &panels {
        let split = per_class_split(&data.labels, *l, 0);
        let train = data.select(&split.train);
        let test = data.select(&split.test);
        let run = |algo: &Algo| {
            run_dense(
                algo,
                &train.x,
                &train.labels,
                &test.x,
                &test.labels,
                data.n_classes,
                None,
            )
            .error_rate
            .unwrap_or(f64::NAN)
        };
        let lda = run(&Algo::Lda);
        let idr = run(&Algo::IdrQr { lambda: 1.0 });
        for i in 1..=9 {
            let r = i as f64 / 10.0;
            let alpha = r / (1.0 - r);
            let srda_err = run(&Algo::Srda(SrdaConfig {
                alpha,
                ..SrdaConfig::default()
            }));
            println!("{name},{l},{r:.1},{:.4},{:.4},{:.4}", srda_err, lda, idr);
        }
    }

    // sparse panel (SRDA only, like the paper's 5(g)/5(h) SRDA curve)
    let news = srda_data::newsgroups_like(0.08, 9);
    let split = ratio_split(&news.labels, 0.1, 0);
    let train = news.select(&split.train);
    let test = news.select(&split.test);
    for i in 1..=9 {
        let r = i as f64 / 10.0;
        let alpha = r / (1.0 - r);
        let err = run_sparse(
            &Algo::Srda(SrdaConfig {
                alpha,
                solver: SrdaSolver::Lsqr {
                    max_iter: 15,
                    tol: 0.0,
                },
                memory_budget_bytes: None,
                parallel_responses: false,
                ..SrdaConfig::default()
            }),
            &train.x,
            &train.labels,
            &test.x,
            &test.labels,
            news.n_classes,
            None,
        )
        .error_rate
        .unwrap_or(f64::NAN);
        println!("newsgroups,10%,{r:.1},{err:.4},,");
    }
}
