//! Large sparse text classification — the paper's headline scenario.
//!
//! Demonstrates:
//! * SRDA with LSQR consuming a CSR term-frequency matrix directly
//!   (never centered, never densified);
//! * the memory-budget guard that stops densifying algorithms exactly
//!   where the paper's Tables IX/X report out-of-memory;
//! * linear scaling of training time in the number of documents.
//!
//! Run with: `cargo run --release --example text_classification`

use srda::{Srda, SrdaConfig};
use srda_data::{newsgroups_like, ratio_split};
use srda_eval::nearest_centroid_error_rate;
use std::time::Instant;

fn main() {
    let data = newsgroups_like(0.15, 5);
    println!(
        "20NG-like: {} docs x {} terms, {} classes, {:.1} avg nnz/doc ({:.4}% dense)\n",
        data.x.nrows(),
        data.x.ncols(),
        data.n_classes,
        data.x.avg_row_nnz(),
        data.x.density() * 100.0
    );

    // SRDA + LSQR across growing training ratios: linear time, flat memory
    println!(
        "{:>7} {:>8} {:>9} {:>11} {:>9}",
        "train%", "docs", "error %", "train s", "s/doc ms"
    );
    for frac in [0.05, 0.1, 0.2, 0.4] {
        let split = ratio_split(&data.labels, frac, 1);
        let train = data.select(&split.train);
        let test = data.select(&split.test);

        let t0 = Instant::now();
        let model = Srda::new(SrdaConfig::lsqr_default())
            .fit_sparse(&train.x, &train.labels)
            .expect("fit");
        let secs = t0.elapsed().as_secs_f64();

        let z_train = model.embedding().transform_sparse(&train.x).unwrap();
        let z_test = model.embedding().transform_sparse(&test.x).unwrap();
        let err = nearest_centroid_error_rate(
            &z_train,
            &train.labels,
            &z_test,
            &test.labels,
            data.n_classes,
        );
        println!(
            "{:>7.0} {:>8} {:>9.2} {:>11.3} {:>9.3}",
            frac * 100.0,
            train.x.nrows(),
            err * 100.0,
            secs,
            secs * 1000.0 / train.x.nrows() as f64
        );
    }

    // The memory wall: a budget that comfortably holds the CSR data but
    // not a dense copy — SRDA runs, a densifying method cannot.
    let budget = 4 * data.x.memory_bytes();
    let dense_need = data.x.nrows() * data.x.ncols() * 8;
    println!(
        "\nmemory wall: budget {} MB; CSR needs {} MB, dense copy would need {} MB",
        budget / 1048576,
        data.x.memory_bytes() / 1048576,
        dense_need / 1048576
    );
    let split = ratio_split(&data.labels, 0.5, 2);
    let train = data.select(&split.train);
    let guarded = Srda::new(SrdaConfig {
        memory_budget_bytes: Some(budget),
        ..SrdaConfig::lsqr_default()
    })
    .fit_sparse(&train.x, &train.labels);
    println!(
        "SRDA+LSQR under budget: {}",
        if guarded.is_ok() { "ok" } else { "failed" }
    );
    let densify = train.x.to_dense_bounded(budget);
    println!(
        "densifying the same training set under the same budget: {}",
        if densify.is_some() {
            "ok"
        } else {
            "refused (out of budget)"
        }
    );
}
