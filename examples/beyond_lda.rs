//! Beyond supervised linear LDA: the extensions the paper's §III points
//! to — the general spectral-regression framework with unsupervised and
//! semi-supervised graphs, and kernel SRDA.
//!
//! Run with: `cargo run --release --example beyond_lda`

use srda::{
    AffinityGraph, EdgeWeight, Kernel, KernelSrda, KernelSrdaConfig, SpectralRegression,
    SpectralRegressionConfig,
};
use srda_data::per_class_split;
use srda_eval::nearest_centroid_error_rate;
use srda_linalg::Mat;

fn main() {
    // --- semi-supervised SRDA -------------------------------------------
    // Semi-supervised learning needs the *manifold assumption*: nearby
    // samples share a class. The benchmark generators deliberately violate
    // it (shared within-class factors make raw nearest neighbours
    // unreliable — that is what LDA is for), so this demo uses a
    // cluster-structured instance where unlabeled geometry is informative.
    let data = {
        let spec = srda_data::model::GaussianSpec {
            n_classes: 10,
            n_features: 784,
            samples_per_class: 60,
            class_rank: 9,
            signal: 1.0,
            n_factors: 4,
            factor_scale: 0.15,
            factor_class_overlap: 0.3,
            noise_scale: 0.02,
            class_noise: 0.16,
        };
        let (x, labels) = srda_data::model::generate(&spec, 17);
        srda_data::DenseDataset {
            x,
            labels,
            n_classes: 10,
            name: "clustered",
        }
    };
    let split = per_class_split(&data.labels, 30, 0);
    let pool = data.select(&split.train);
    let test = data.select(&split.test);

    // only 3 of the 30 samples per class keep their label
    let keep = per_class_split(&pool.labels, 2, 1);
    let partial: Vec<Option<usize>> = {
        let mut p = vec![None; pool.x.nrows()];
        for &i in &keep.train {
            p[i] = Some(pool.labels[i]);
        }
        p
    };
    let n_labeled = partial.iter().flatten().count();
    println!(
        "semi-supervised: {} samples, {} labeled ({} classes)",
        pool.x.nrows(),
        n_labeled,
        data.n_classes
    );

    let eval_embedding = |emb: &srda::Embedding, tag: &str| {
        let z_train = emb.transform_dense(&pool.x).unwrap();
        let zl = z_train.select_rows(&keep.train);
        let yl: Vec<usize> = keep.train.iter().map(|&i| pool.labels[i]).collect();
        let z_test = emb.transform_dense(&test.x).unwrap();
        let err = nearest_centroid_error_rate(&zl, &yl, &z_test, &test.labels, data.n_classes);
        println!("  {tag:32} test error {:.2}%", err * 100.0);
    };

    // supervised-only baseline: fit on the 3 labeled samples per class
    let labeled_only = pool.select(&keep.train);
    let supervised = srda::Srda::new(srda::SrdaConfig::default())
        .fit_dense(&labeled_only.x, &labeled_only.labels)
        .unwrap();
    eval_embedding(supervised.embedding(), "SRDA on labeled subset only");

    // semi-supervised: labeled pairs + k-NN structure over everything
    let graph = AffinityGraph::semi_supervised(&pool.x, &partial, 6, EdgeWeight::Binary, 0.3);
    let ssl = SpectralRegression::new(SpectralRegressionConfig {
        n_components: data.n_classes - 1,
        alpha: 0.5,
        lsqr_iterations: None,
        ..Default::default()
    })
    .fit_dense(&pool.x, &graph)
    .unwrap();
    eval_embedding(&ssl, "semi-supervised SR (labels + kNN)");

    // --- kernel SRDA on a nonlinear problem ------------------------------
    println!("\nkernel SRDA on XOR (not linearly separable):");
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for (cx, cy, label) in [(0.0, 0.0, 0), (4.0, 4.0, 0), (0.0, 4.0, 1), (4.0, 0.0, 1)] {
        for s in 0..25 {
            let n1 = ((s * 13 + label * 7) as f64 * 0.71).sin() * 0.4;
            let n2 = ((s * 17 + label * 3) as f64 * 0.37).cos() * 0.4;
            rows.push(vec![cx + n1, cy + n2]);
            y.push(label);
        }
    }
    let x = Mat::from_rows(&rows).unwrap();

    for (tag, kernel) in [
        ("linear kernel", Kernel::Linear),
        ("RBF kernel (gamma = 0.5)", Kernel::Rbf { gamma: 0.5 }),
    ] {
        let model = KernelSrda::new(KernelSrdaConfig {
            kernel,
            alpha: 0.1,
            ..KernelSrdaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        let z = model.transform_dense(&x).unwrap();
        let err = nearest_centroid_error_rate(&z, &y, &z, &y, 2);
        println!("  {tag:32} training error {:.2}%", err * 100.0);
    }
    println!("\nexpected: the linear kernel cannot solve XOR; RBF solves it exactly.");
}
