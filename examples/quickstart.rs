//! Quickstart: train SRDA on a small synthetic dataset, embed the test
//! set, and classify with nearest centroid — the whole pipeline in ~50
//! lines.
//!
//! Run with: `cargo run --release --example quickstart`

use srda::{Srda, SrdaConfig};
use srda_data::{mnist_like, per_class_split};
use srda_eval::nearest_centroid_error_rate;

fn main() {
    // 1. Data: a small MNIST-like instance (10 classes, 784 features).
    let data = mnist_like(0.1, 7);
    println!(
        "dataset: {} samples x {} features, {} classes",
        data.x.nrows(),
        data.x.ncols(),
        data.n_classes
    );

    // 2. Split: 20 training samples per class, rest for testing.
    let split = per_class_split(&data.labels, 20, 0);
    let train = data.select(&split.train);
    let test = data.select(&split.test);

    // 3. Fit SRDA (α = 1, normal equations — the paper's defaults).
    let model = Srda::new(SrdaConfig::default())
        .fit_dense(&train.x, &train.labels)
        .expect("fit");
    println!(
        "embedding: {} -> {} dimensions",
        model.embedding().n_features(),
        model.embedding().n_components()
    );

    // 4. Embed both sets and classify.
    let z_train = model
        .embedding()
        .transform_dense(&train.x)
        .expect("transform");
    let z_test = model
        .embedding()
        .transform_dense(&test.x)
        .expect("transform");
    let err = nearest_centroid_error_rate(
        &z_train,
        &train.labels,
        &z_test,
        &test.labels,
        data.n_classes,
    );
    println!(
        "test error: {:.2}% on {} held-out samples",
        err * 100.0,
        test.x.nrows()
    );
    assert!(err < 0.5, "sanity: should beat chance comfortably");
}
