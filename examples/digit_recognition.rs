//! Digit recognition with model selection: sweep SRDA's regularization
//! parameter α on a validation split (the paper's Figure 5 methodology)
//! and evaluate the best α on held-out test data.
//!
//! Run with: `cargo run --release --example digit_recognition`

use srda::{Srda, SrdaConfig};
use srda_data::{mnist_like, per_class_split};
use srda_eval::nearest_centroid_error_rate;

fn fit_and_score(
    train: &srda_data::DenseDataset,
    eval: &srda_data::DenseDataset,
    n_classes: usize,
    alpha: f64,
) -> f64 {
    let model = Srda::new(SrdaConfig {
        alpha,
        ..SrdaConfig::default()
    })
    .fit_dense(&train.x, &train.labels)
    .expect("fit");
    let z_train = model.embedding().transform_dense(&train.x).unwrap();
    let z_eval = model.embedding().transform_dense(&eval.x).unwrap();
    nearest_centroid_error_rate(&z_train, &train.labels, &z_eval, &eval.labels, n_classes)
}

fn main() {
    let data = mnist_like(0.15, 21);
    println!(
        "MNIST-like: {} samples x {} features, {} classes\n",
        data.x.nrows(),
        data.x.ncols(),
        data.n_classes
    );

    // train / validation / test: 30 per class train, 20 per class val
    let outer = per_class_split(&data.labels, 50, 0);
    let test = data.select(&outer.test);
    let pool = data.select(&outer.train);
    let inner = per_class_split(&pool.labels, 30, 1);
    let train = pool.select(&inner.train);
    let val = pool.select(&inner.test);

    // α sweep on the validation split (Figure 5's x-axis)
    println!("{:>10} {:>10} {:>12}", "a/(1+a)", "alpha", "val error %");
    let mut best = (f64::INFINITY, 1.0);
    for i in 1..=9 {
        let r = i as f64 / 10.0;
        let alpha = r / (1.0 - r);
        let err = fit_and_score(&train, &val, data.n_classes, alpha);
        if err < best.0 {
            best = (err, alpha);
        }
        println!("{:>10.1} {:>10.3} {:>12.2}", r, alpha, err * 100.0);
    }

    // final evaluation with the selected α
    let test_err = fit_and_score(&train, &test, data.n_classes, best.1);
    println!(
        "\nselected alpha = {:.3} (val error {:.2}%); test error {:.2}%",
        best.1,
        best.0 * 100.0,
        test_err * 100.0
    );
    println!("paper (Fig 5): the valley is wide — SRDA is robust to the choice of alpha.");
}
